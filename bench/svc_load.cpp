// Microbenchmarks of the serving runtime (src/svc): ingest churn, the
// query front's hot paths, and the closed-loop load generator end to end.
// Throughput is items_per_second where an item is one applied event
// (ingest) or one delivered answer (queries); the closed-loop benchmarks
// also export the generator's p50/p99 latency as counters, which is where
// the committed qps/p99 table in EXPERIMENTS.md comes from.
#include <benchmark/benchmark.h>

#include <memory>

#include "fault/generators.hpp"
#include "svc/loadgen.hpp"

namespace {

using namespace ocp;

// Fault/repair churn through the single-writer engine: replays a seeded
// 256-event stream in 16-event batches. Items are applied events (net
// fault-set changes). Engine construction (the epoch-0 labeling and
// snapshot) happens outside the measurement region — the numbers are
// epoch-turnover cost only, not construction cost.
void BM_SvcIngestChurn(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  stats::Rng rng(11);
  const auto initial = fault::uniform_random(m, 10, rng);
  const auto stream = svc::generate_event_stream(m, initial, 256, 0.45, 13);

  std::int64_t applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<svc::IngestEngine>(initial);
    state.ResumeTiming();
    for (std::size_t at = 0; at < stream.size(); at += 16) {
      const auto outcome = engine->apply(
          std::span(stream).subspan(at, std::min<std::size_t>(
                                            16, stream.size() - at)));
      applied += static_cast<std::int64_t>(outcome.applied);
    }
    benchmark::DoNotOptimize(engine->snapshot());
    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(applied);
  state.SetLabel("items = applied events");
}
BENCHMARK(BM_SvcIngestChurn)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Steady-state single-thread query throughput against a fixed snapshot:
// the RCU acquire + O(1) status/region answer path.
void BM_SvcQueryStatus(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(32);
  stats::Rng rng(17);
  svc::Service service(fault::uniform_random(m, 12, rng));

  std::size_t i = 0;
  std::int64_t answered = 0;
  for (auto _ : state) {
    const mesh::Coord c = m.coord(i % static_cast<std::size_t>(m.node_count()));
    i += 131;  // coprime stride: sweep the machine without an RNG in the loop
    const auto answer = service.query_status(c);
    benchmark::DoNotOptimize(answer);
    ++answered;
  }
  state.SetItemsProcessed(answered);
  state.SetLabel("items = answers");
}
BENCHMARK(BM_SvcQueryStatus);

// Route queries against a warmed per-epoch cache: after the first sweep
// every lookup is a shared-lock table hit returning a pooled entry.
void BM_SvcQueryRouteWarm(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(32);
  stats::Rng rng(19);
  svc::Service service(fault::uniform_random(m, 12, rng));

  std::size_t i = 0;
  std::int64_t answered = 0;
  for (auto _ : state) {
    const auto nodes = static_cast<std::size_t>(m.node_count());
    const mesh::Coord src = m.coord(i % 64);  // 64x64 distinct pairs
    const mesh::Coord dst = m.coord(nodes - 1 - (i * 7) % 64);
    i += 1;
    const auto answer = service.query_route(src, dst);
    benchmark::DoNotOptimize(answer);
    ++answered;
  }
  state.SetItemsProcessed(answered);
  state.SetLabel("items = answers");
}
BENCHMARK(BM_SvcQueryRouteWarm);

// Route queries where (nearly) every pair is new: the miss path — route
// computation plus pooled insertion under the exclusive lock. Pairs are
// enumerated so no pair repeats within ~node_count^2 queries, far more
// than a timed run consumes.
void BM_SvcQueryRouteCold(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(32);
  stats::Rng rng(19);
  svc::Service service(fault::uniform_random(m, 12, rng));

  std::size_t i = 0;
  std::int64_t answered = 0;
  const auto nodes = static_cast<std::size_t>(m.node_count());
  for (auto _ : state) {
    const std::size_t src_index = i % nodes;
    const std::size_t stride = 1 + i / nodes;  // new dst sweep per lap
    const mesh::Coord src = m.coord(src_index);
    const mesh::Coord dst = m.coord((src_index + stride) % nodes);
    i += 1;
    const auto answer = service.query_route(src, dst);
    benchmark::DoNotOptimize(answer);
    ++answered;
  }
  state.SetItemsProcessed(answered);
  state.SetLabel("items = answers");
}
BENCHMARK(BM_SvcQueryRouteCold);

// Batched queries: one snapshot acquisition amortized over 8 mixed items.
void BM_SvcQueryBatch8(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(32);
  stats::Rng rng(23);
  svc::Service service(fault::uniform_random(m, 12, rng));
  const std::vector<svc::QueryItem> items = {
      {svc::QueryKind::Status, {1, 1}, {}},
      {svc::QueryKind::Region, {30, 2}, {}},
      {svc::QueryKind::Status, {15, 15}, {}},
      {svc::QueryKind::Route, {0, 0}, {31, 31}},
      {svc::QueryKind::Region, {7, 22}, {}},
      {svc::QueryKind::Status, {29, 30}, {}},
      {svc::QueryKind::Route, {31, 0}, {0, 31}},
      {svc::QueryKind::Status, {3, 27}, {}},
  };

  std::int64_t answered = 0;
  for (auto _ : state) {
    const auto answer = service.query_batch(items);
    benchmark::DoNotOptimize(answer);
    answered += static_cast<std::int64_t>(answer.items.size());
  }
  state.SetItemsProcessed(answered);
  state.SetLabel("items = answers");
}
BENCHMARK(BM_SvcQueryBatch8);

// Shared body for the closed-loop benchmarks: runs the generator to
// completion and reports delivered answers plus the latency histogram.
void run_closed_loop(benchmark::State& state,
                     const svc::SvcLoadConfig& config) {
  std::int64_t answers = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  for (auto _ : state) {
    const svc::SvcLoadResult result = svc::run_svc_load(config);
    // queries_ok counts each batch once; swap that for its delivered items.
    answers += static_cast<std::int64_t>(
        result.queries_ok - result.batch_items / config.batch_size +
        result.batch_items);
    p50 = result.p50_us;
    p99 = result.p99_us;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(answers);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  state.SetLabel("items = answers");
}

// The whole runtime under closed-loop load: a writer replaying seeded
// churn against N query threads. Items are delivered answers; the p50/p99
// counters surface the generator's latency histogram (microseconds).
void BM_SvcClosedLoop(benchmark::State& state) {
  run_closed_loop(
      state, svc::query_heavy_profile(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_SvcClosedLoop)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Ingest-dominant closed loop: 8x the churn against a light query front —
// throughput here tracks epoch-turnover cost (incremental relabeling and
// copy-on-write publication), not the query hot paths.
void BM_SvcClosedLoopIngestHeavy(benchmark::State& state) {
  run_closed_loop(state, svc::ingest_heavy_profile(
                             static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_SvcClosedLoopIngestHeavy)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Mixed-rate closed loop: heavy churn AND a full query front racing it —
// the regime where route-cache carry-over and page sharing pay off
// together.
void BM_SvcClosedLoopMixedRate(benchmark::State& state) {
  run_closed_loop(state, svc::mixed_rate_profile(
                             static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_SvcClosedLoopMixedRate)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Tile-partitioned multi-writer ingest through the deterministic round
// driver: the same seeded 256-event stream as BM_SvcIngestChurn, applied by
// S shards gossiping halo deltas to fixpoint. Items are applied external
// events (halo-derived re-applications are overhead, not work), so the
// items/s column is directly comparable with the single-writer churn
// number; the halo counters quantify what the sharding costs in gossip.
void BM_SvcShardedIngest(benchmark::State& state) {
  const auto shard_count = state.range(0);
  const std::int32_t rows = shard_count >= 4 ? 2 : 1;
  const std::int32_t cols = static_cast<std::int32_t>(shard_count) / rows;
  const mesh::Mesh2D m = mesh::Mesh2D::square(32);
  stats::Rng rng(11);
  const auto initial = fault::uniform_random(m, 10, rng);
  const auto stream = svc::generate_event_stream(m, initial, 256, 0.45, 13);
  const svc::ShardGrid grid(m, rows, cols);

  std::int64_t applied = 0;
  double halo_deltas = 0.0;
  double halo_events = 0.0;
  for (auto _ : state) {
    const svc::ShardedRoundsResult result =
        svc::run_sharded_rounds(grid, initial, stream, 16);
    applied += static_cast<std::int64_t>(result.applied);
    halo_deltas = static_cast<double>(result.halo_deltas);
    halo_events = static_cast<double>(result.halo_events);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(applied);
  state.counters["halo_deltas"] = halo_deltas;
  state.counters["halo_events"] = halo_events;
  state.SetLabel("items = applied external events");
}
BENCHMARK(BM_SvcShardedIngest)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The sharded runtime end to end under closed-loop load: S ingest workers
// (one per shard) racing N query threads, queries scatter-gathered against
// the composite epoch vector. Args are (shards, query_threads); the
// 1-shard rows are the degenerate fleet whose gap to BM_SvcClosedLoop is
// the sharding layer's fixed overhead.
void BM_SvcShardedClosedLoop(benchmark::State& state) {
  const auto shard_count = state.range(0);
  svc::ShardedServiceConfig fleet;
  fleet.shard_rows = shard_count >= 4 ? 2 : 1;
  fleet.shard_cols = static_cast<std::int32_t>(shard_count) /
                     fleet.shard_rows;
  const svc::SvcLoadConfig config =
      svc::query_heavy_profile(static_cast<std::size_t>(state.range(1)));

  std::int64_t answers = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double halo_deltas = 0.0;
  for (auto _ : state) {
    const svc::ShardedLoadResult result =
        svc::run_sharded_load(config, fleet);
    answers += static_cast<std::int64_t>(
        result.queries_ok - result.batch_items / config.batch_size +
        result.batch_items);
    p50 = result.p50_us;
    p99 = result.p99_us;
    halo_deltas = static_cast<double>(result.halo_deltas);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(answers);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  state.counters["halo_deltas"] = halo_deltas;
  state.SetLabel("items = answers");
}
BENCHMARK(BM_SvcShardedClosedLoop)
    ->Args({1, 1})->Args({1, 2})->Args({1, 4})->Args({1, 8})
    ->Args({2, 1})->Args({2, 2})->Args({2, 4})->Args({2, 8})
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
