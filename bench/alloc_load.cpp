// Microbenchmarks of the allocation subsystem (src/alloc): the
// incremental free-region index against a from-scratch rebuild (the
// wall-clock twin of the deterministic cells_patched() pin in
// tests/alloc/free_index_test.cpp), per-strategy placement-decision
// throughput, and the closed-loop driver end to end at 1/2/8 reader
// threads. The closed-loop rows export utilization / fragmentation /
// placement p99 / storm-recovery counters, which is where the committed
// allocation table in EXPERIMENTS.md comes from. run_bench.sh --alloc
// gates fresh runs against BENCH_alloc.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "alloc/loadgen.hpp"
#include "alloc/strategy.hpp"
#include "stats/rng.hpp"

namespace {

using namespace ocp;

constexpr std::int32_t kIndexSide = 64;

/// Seeded fault cells for the index churn benchmarks: distinct coordinates
/// so every toggle flips state (a no-op toggle would patch nothing and
/// flatter the incremental number).
std::vector<mesh::Coord> churn_cells(const mesh::Mesh2D& m, std::size_t count,
                                     std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<mesh::Coord> cells;
  std::vector<std::uint8_t> taken(static_cast<std::size_t>(m.node_count()), 0);
  while (cells.size() < count) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1));
    if (taken[i] != 0) continue;
    taken[i] = 1;
    cells.push_back(m.coord(i));
  }
  return cells;
}

// A single-fault epoch against the incrementally maintained index: each
// toggle patches one row segment (<= 64 cells on the 64x64 machine), never
// the whole plane. Items are single-cell epochs. The committed ratio of
// this row to BM_AllocIndexSingleFaultRebuild is the wall-clock form of
// ISSUE 10's >= 4x acceptance pin.
void BM_AllocIndexSingleFaultIncremental(benchmark::State& state) {
  const mesh::Mesh2D m(kIndexSide, kIndexSide);
  alloc::FreeRegionIndex idx(m);
  const std::vector<mesh::Coord> cells = churn_cells(m, 512, 29);

  std::size_t at = 0;
  std::vector<std::uint8_t> is_busy(cells.size(), 0);
  std::int64_t epochs = 0;
  for (auto _ : state) {
    // Cycle fault -> repair over the fixed cell set so the busy density
    // stays bounded however long the timer runs.
    const std::size_t i = at % cells.size();
    is_busy[i] ^= 1;
    idx.set_busy(cells[i], is_busy[i] != 0);
    ++at;
    ++epochs;
    benchmark::DoNotOptimize(idx.free_cells());
  }
  state.SetItemsProcessed(epochs);
  state.counters["cells_patched_per_epoch"] =
      epochs > 0 ? static_cast<double>(idx.cells_patched()) /
                       static_cast<double>(epochs)
                 : 0.0;
  state.SetLabel("items = single-cell epochs");
}
BENCHMARK(BM_AllocIndexSingleFaultIncremental);

// The same single-fault epochs paid for by a from-scratch rebuild: flip the
// cell in a busy plane, then reconstruct the whole index from it — what
// epoch turnover would cost without the left-run patching.
void BM_AllocIndexSingleFaultRebuild(benchmark::State& state) {
  const mesh::Mesh2D m(kIndexSide, kIndexSide);
  const std::vector<mesh::Coord> cells = churn_cells(m, 512, 29);
  std::vector<std::uint8_t> busy(static_cast<std::size_t>(m.node_count()), 0);
  const auto cell_index = [&m](mesh::Coord c) {
    return static_cast<std::size_t>(c.y) *
               static_cast<std::size_t>(m.width()) +
           static_cast<std::size_t>(c.x);
  };

  std::size_t at = 0;
  std::int64_t epochs = 0;
  for (auto _ : state) {
    const std::size_t i = at % cells.size();
    busy[cell_index(cells[i])] ^= 1;
    ++at;
    ++epochs;
    const alloc::FreeRegionIndex idx = alloc::FreeRegionIndex::build(
        m, [&](mesh::Coord c) { return busy[cell_index(c)] != 0; });
    benchmark::DoNotOptimize(idx.free_cells());
  }
  state.SetItemsProcessed(epochs);
  state.SetLabel("items = single-cell epochs");
}
BENCHMARK(BM_AllocIndexSingleFaultRebuild);

// Placement-decision throughput per strategy: choose() against a fixed
// 64x64 index with ~12% scattered busy cells, over a seeded mix of job
// shapes. Arg is the StrategyKind; items are decisions (hits and misses
// both count — a nullopt is a full anchor sweep too).
void BM_AllocPlacementDecision(benchmark::State& state) {
  const auto kind = static_cast<alloc::StrategyKind>(state.range(0));
  const mesh::Mesh2D m(kIndexSide, kIndexSide);
  alloc::FreeRegionIndex idx(m);
  for (const mesh::Coord c : churn_cells(m, 512, 31)) idx.set_busy(c, true);
  const auto strategy = alloc::make_strategy(kind);
  const std::vector<alloc::JobRequest> jobs = alloc::generate_job_stream(
      m, 64, /*max_side=*/8, /*min_lifetime=*/1, /*max_lifetime=*/1, 37);

  std::size_t at = 0;
  std::int64_t decisions = 0;
  for (auto _ : state) {
    const alloc::JobRequest& j = jobs[at % jobs.size()];
    ++at;
    ++decisions;
    benchmark::DoNotOptimize(strategy->choose(idx, j.width, j.height));
  }
  state.SetItemsProcessed(decisions);
  state.SetLabel(strategy->name());
}
BENCHMARK(BM_AllocPlacementDecision)->Arg(0)->Arg(1)->Arg(2);

// The allocation subsystem end to end under the closed-loop driver: one
// writer interleaving job submissions with fault churn (including the
// mid-run eviction storm) against N readers polling the published view.
// Items are placement decisions; the counters surface the replay-identical
// workload outcomes the committed EXPERIMENTS.md table reports. The arg is
// the reader-thread count — the replay digests are bit-identical across
// rows, so real-time deltas here are pure reader-side cost.
void BM_AllocClosedLoop(benchmark::State& state) {
  alloc::AllocLoadConfig config;
  config.mesh_side = 24;
  config.jobs = 192;
  config.fault_events = 72;
  config.storm_side = 8;
  config.reader_threads = static_cast<std::size_t>(state.range(0));
  config.reads_per_thread = 500;
  config.seed = 41;

  std::int64_t decisions = 0;
  alloc::AllocLoadResult last;
  for (auto _ : state) {
    const alloc::AllocLoadResult result = alloc::run_alloc_load(config);
    decisions += static_cast<std::int64_t>(
        result.stats.placed + result.stats.replaced + result.stats.rejected);
    last = result;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(decisions);
  state.counters["peak_utilization"] = last.peak_utilization;
  state.counters["frag_at_peak"] = last.fragmentation_at_peak;
  state.counters["p99_place_us"] = last.p99_place_us;
  state.counters["storm_evicted"] = static_cast<double>(last.storm_evicted);
  state.counters["storm_recovery_ticks"] =
      static_cast<double>(last.storm_recovery_ticks);
  state.counters["oracle_ok"] = last.oracle_ok ? 1.0 : 0.0;
  state.SetLabel("items = placement decisions");
}
BENCHMARK(BM_AllocClosedLoop)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
