// Router comparison over labeled fault regions: deterministic e-cube with
// ring detours, greedy minimal-adaptive, and oracle-guided minimal routing
// (the Wu [9] discipline), plus plain XY as the non-fault-tolerant baseline.
// Headline metric: how often each router delivers over a shortest path.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "routing/adaptive_router.hpp"
#include "routing/minimal_router.hpp"
#include "routing/traffic.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  if (opts.n == 100) opts.n = 32;
  const std::size_t trials = opts.quick ? 5 : 15;
  const std::size_t pairs = opts.quick ? 100 : 400;

  std::cout << "Router quality over disabled regions on a " << opts.n << "x"
            << opts.n << " mesh, " << trials << " trials x " << pairs
            << " pairs per point\n\n";

  const mesh::Mesh2D m = mesh::Mesh2D::square(opts.n);
  stats::Table table({"f", "router", "delivery %", "minimal %", "stretch",
                      "detour hops"});

  for (std::int32_t f = 2 * opts.fstep; f <= opts.fmax; f += 2 * opts.fstep) {
    struct Agg {
      const char* name;
      stats::Summary delivery, minimal, stretch, detour;
    };
    Agg aggs[] = {{"xy", {}, {}, {}, {}},
                  {"ring", {}, {}, {}, {}},
                  {"adaptive", {}, {}, {}, {}},
                  {"minimal", {}, {}, {}, {}}};

    stats::Rng seeder(opts.seed + static_cast<std::uint64_t>(f));
    for (std::size_t t = 0; t < trials; ++t) {
      stats::Rng rng(seeder.fork_seed());
      const auto faults = fault::uniform_random(
          m, static_cast<std::size_t>(f), rng);
      labeling::PipelineOptions lopts;
      lopts.engine = labeling::Engine::Reference;
      const auto labeled = labeling::run_pipeline(faults, lopts);
      const auto blocked = labeling::disabled_cells(labeled.activation);

      const routing::XYRouter xy(m, blocked);
      const routing::FaultRingRouter ring(m, blocked);
      const routing::AdaptiveRouter adaptive(m, blocked);
      const routing::MinimalRouter minimal(m, blocked,
                                           routing::Fallback::Ring);
      const routing::Router* routers[] = {&xy, &ring, &adaptive, &minimal};
      for (std::size_t ri = 0; ri < 4; ++ri) {
        stats::Rng traffic_rng(rng.seed() * 13 + ri);
        const auto stats = routing::run_uniform_traffic(*routers[ri], blocked,
                                                        pairs, traffic_rng);
        aggs[ri].delivery.add(100.0 * stats.delivery_rate());
        aggs[ri].minimal.add(100.0 * stats.minimal_rate());
        if (!stats.stretch.empty()) {
          aggs[ri].stretch.add(stats.stretch.mean());
          aggs[ri].detour.add(stats.detour_hops.mean());
        }
      }
    }
    for (const auto& agg : aggs) {
      table.add_row({std::to_string(f), agg.name,
                     stats::format_double(agg.delivery.mean(), 2),
                     stats::format_double(agg.minimal.mean(), 2),
                     agg.stretch.empty()
                         ? "n/a"
                         : stats::format_double(agg.stretch.mean(), 3),
                     agg.detour.empty()
                         ? "n/a"
                         : stats::format_double(agg.detour.mean(), 3)});
    }
  }
  bench::emit(opts, "routing_quality", table);

  std::cout << "Expected shape: xy delivers < 100% (no fault tolerance); "
               "ring/adaptive/minimal all deliver 100%; minimal achieves "
               "the highest minimal %, adaptive close behind, ring lowest; "
               "stretch orders the other way.\n";
  return 0;
}
