// Minimal command-line handling shared by the reproduction harnesses.
//
// Every figure/table binary accepts:
//   --n <int>        machine side length (default: the paper's 100)
//   --trials <int>   Monte-Carlo trials per sweep point
//   --fstep <int>    fault-count step of the sweep (paper sweeps 0..100)
//   --fmax <int>     largest fault count
//   --seed <u64>     RNG seed
//   --csv <prefix>   also write each printed table to <prefix><name>.csv
//   --quick          shrink trials for smoke runs
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "stats/table.hpp"

namespace ocp::bench {

struct Options {
  std::int32_t n = 100;
  std::size_t trials = 200;
  std::int32_t fstep = 5;
  std::int32_t fmax = 100;
  std::uint64_t seed = 20010423;
  std::optional<std::string> csv_prefix;
  bool quick = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n") {
      opts.n = std::atoi(need_value(i, "--n"));
    } else if (arg == "--trials") {
      opts.trials = static_cast<std::size_t>(
          std::atoll(need_value(i, "--trials")));
    } else if (arg == "--fstep") {
      opts.fstep = std::atoi(need_value(i, "--fstep"));
    } else if (arg == "--fmax") {
      opts.fmax = std::atoi(need_value(i, "--fmax"));
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(
          std::atoll(need_value(i, "--seed")));
    } else if (arg == "--csv") {
      opts.csv_prefix = need_value(i, "--csv");
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --n N --trials T --fstep S --fmax F --seed X "
                   "--csv PREFIX --quick\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  if (opts.quick) {
    opts.trials = std::min<std::size_t>(opts.trials, 20);
    opts.fstep = std::max(opts.fstep, 20);
  }
  return opts;
}

/// Prints a titled table and optionally writes it as CSV.
inline void emit(const Options& opts, const std::string& name,
                 const stats::Table& table) {
  std::cout << "== " << name << " ==\n";
  table.print(std::cout);
  std::cout << "\n";
  if (opts.csv_prefix) {
    const std::string path = *opts.csv_prefix + name + ".csv";
    if (!table.write_csv(path)) {
      std::cerr << "failed to write " << path << "\n";
    } else {
      std::cout << "(csv written to " << path << ")\n\n";
    }
  }
}

inline std::vector<std::int32_t> sweep(const Options& opts) {
  std::vector<std::int32_t> out;
  for (std::int32_t f = 0; f <= opts.fmax; f += opts.fstep) out.push_back(f);
  return out;
}

}  // namespace ocp::bench
