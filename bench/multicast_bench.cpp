// Collective communication over the labeled fault regions: traffic and
// delivery depth of separate unicasts vs dual-path multicast vs greedy tree
// multicast (the path-based scheme family of the paper's reference [8]).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "routing/multicast.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  if (opts.n == 100) opts.n = 32;
  const std::size_t trials = opts.quick ? 5 : 20;

  std::cout << "Multicast over disabled regions on a " << opts.n << "x"
            << opts.n << " mesh, ring routing, " << trials
            << " trials per point\n\n";

  const mesh::Mesh2D m = mesh::Mesh2D::square(opts.n);
  stats::Table table({"f", "#dests", "scheme", "traffic", "depth",
                      "complete %"});

  for (std::int32_t f : {20, 40}) {
    for (std::size_t dest_count : {4u, 16u, 48u}) {
      stats::Summary traffic[3];
      stats::Summary depth[3];
      stats::Summary complete[3];
      stats::Rng seeder(opts.seed + static_cast<std::uint64_t>(f) * 100 +
                        dest_count);
      for (std::size_t t = 0; t < trials; ++t) {
        stats::Rng rng(seeder.fork_seed());
        const auto faults = fault::uniform_random(
            m, static_cast<std::size_t>(f), rng);
        const auto labeled = labeling::run_pipeline(
            faults, {.engine = labeling::Engine::Reference});
        const auto blocked = labeling::disabled_cells(labeled.activation);
        const routing::FaultRingRouter router(m, blocked);

        // Source and distinct destinations among usable nodes.
        const auto pick = [&]() {
          while (true) {
            const auto c = m.coord(static_cast<std::size_t>(
                rng.uniform_int(0, m.node_count() - 1)));
            if (!blocked.contains(c)) return c;
          }
        };
        const mesh::Coord src = pick();
        std::vector<mesh::Coord> dests;
        while (dests.size() < dest_count) {
          const mesh::Coord c = pick();
          if (c == src ||
              std::find(dests.begin(), dests.end(), c) != dests.end()) {
            continue;
          }
          dests.push_back(c);
        }

        const routing::Multicast results[3] = {
            routing::separate_unicast(router, src, dests),
            routing::path_multicast(router, src, dests),
            routing::tree_multicast(router, m, src, dests),
        };
        for (int s = 0; s < 3; ++s) {
          traffic[s].add(static_cast<double>(results[s].traffic));
          depth[s].add(static_cast<double>(results[s].depth));
          complete[s].add(results[s].complete() ? 100.0 : 0.0);
        }
      }
      const char* names[3] = {"unicast", "dual-path", "tree"};
      for (int s = 0; s < 3; ++s) {
        table.add_row({std::to_string(f), std::to_string(dest_count),
                       names[s], stats::format_double(traffic[s].mean(), 1),
                       stats::format_double(depth[s].mean(), 1),
                       stats::format_double(complete[s].mean(), 1)});
      }
    }
  }
  bench::emit(opts, "multicast", table);

  std::cout << "Expected shape: all schemes complete (fault-tolerant legs); "
               "tree and dual-path cut traffic vs separate unicasts, more so "
               "with many destinations; dual-path trades depth (serial "
               "chains) for simplicity, the tree balances both.\n";
  return 0;
}
