// Microbenchmarks of the wormhole simulator. Every benchmark reports
// throughput as flit moves per second (items_per_second) — the one work
// unit both kernels execute identically — so event-vs-sweep and
// cached-vs-direct comparisons read off the same scale.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/load_sweep.hpp"
#include "netsim/traffic_sim.hpp"

namespace {

using namespace ocp;

std::vector<netsim::PacketSpec> random_specs(const mesh::Mesh2D& m,
                                             std::size_t packets) {
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  std::vector<netsim::PacketSpec> specs;
  stats::Rng rng(7);
  while (specs.size() < packets) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
    if (src == dst) continue;
    specs.push_back(netsim::make_packet(router.route(src, dst), 1, 6,
                                        rng.uniform_int(0, 64)));
  }
  return specs;
}

void run_batch(benchmark::State& state, netsim::SimKernel kernel) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto packets = static_cast<std::size_t>(state.range(1));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  // Pre-route the batch once; the benchmark measures the simulator.
  const auto specs = random_specs(m, packets);

  std::int64_t flit_moves = 0;
  for (auto _ : state) {
    netsim::WormholeSim sim(
        m, {.num_vcs = 1, .vc_buffer_flits = 2, .kernel = kernel});
    for (const auto& spec : specs) sim.submit(spec);
    const auto result = sim.run();
    flit_moves += result.flit_moves;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(flit_moves);
  state.SetLabel("items = flit moves");
}

void BM_WormholeBatch(benchmark::State& state) {
  run_batch(state, netsim::SimKernel::Event);
}
BENCHMARK(BM_WormholeBatch)
    ->Args({16, 32})
    ->Args({16, 256})
    ->Args({32, 256})
    ->Args({32, 1024})
    ->Args({64, 1024})
    ->Unit(benchmark::kMillisecond);

// The reference sweep kernel on the same batches: committed next to the
// event numbers so the baseline records the kernel speedup itself.
void BM_WormholeBatchSweepKernel(benchmark::State& state) {
  run_batch(state, netsim::SimKernel::Sweep);
}
BENCHMARK(BM_WormholeBatchSweepKernel)
    ->Args({16, 256})
    ->Args({32, 256})
    ->Args({64, 1024})
    ->Unit(benchmark::kMillisecond);

void BM_TrafficSimEndToEnd(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(24);
  stats::Rng rng(3);
  const auto faults = fault::clustered(m, 3, 8, rng);
  const auto labeled = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);
  netsim::TrafficSimConfig config;
  config.injection_rate = 0.004;
  config.warm_cycles = 256;
  config.num_vcs = 2;
  std::int64_t flit_moves = 0;
  for (auto _ : state) {
    const auto result = netsim::run_traffic_sim(m, blocked, router, config);
    flit_moves += result.flit_moves;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(flit_moves);
  state.SetLabel("items = flit moves");
}
BENCHMARK(BM_TrafficSimEndToEnd)->Unit(benchmark::kMillisecond);

// Same run through a shared route cache: the steady-state cost once the
// (src, dst) table is warm, i.e. what each extra sweep trial pays.
void BM_TrafficSimCachedRoutes(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(24);
  stats::Rng rng(3);
  const auto faults = fault::clustered(m, 3, 8, rng);
  const auto labeled = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);
  routing::RouteCache routes(router, m);
  netsim::TrafficSimConfig config;
  config.injection_rate = 0.004;
  config.warm_cycles = 256;
  config.num_vcs = 2;
  std::int64_t flit_moves = 0;
  for (auto _ : state) {
    const auto result = netsim::run_traffic_sim(m, blocked, config, routes);
    flit_moves += result.flit_moves;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(flit_moves);
  state.SetLabel("items = flit moves");
}
BENCHMARK(BM_TrafficSimCachedRoutes)->Unit(benchmark::kMillisecond);

// A full deterministic load sweep (rate grid x trials, OpenMP over trials)
// at network-study scale: mesh side 32 and 64.
void BM_LoadSweep(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  netsim::LoadSweepConfig config;
  config.injection_rates = {0.001, 0.002, 0.004, 0.008};
  config.trials = 2;
  config.base.warm_cycles = 256;
  config.base.num_vcs = 2;
  std::int64_t flit_moves = 0;
  for (auto _ : state) {
    const auto result = netsim::run_load_sweep(m, blocked, router, config);
    for (const auto& point : result.points) flit_moves += point.flit_moves;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(flit_moves);
  state.SetLabel("items = flit moves");
}
BENCHMARK(BM_LoadSweep)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
