// Microbenchmarks of the wormhole simulator: cycle throughput under light
// and saturated loads, and the cost of one full traffic-sim run.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/traffic_sim.hpp"

namespace {

using namespace ocp;

void BM_WormholeBatch(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto packets = static_cast<std::size_t>(state.range(1));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);

  // Pre-route the batch once; the benchmark measures the simulator.
  std::vector<netsim::PacketSpec> specs;
  stats::Rng rng(7);
  while (specs.size() < packets) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst) continue;
    specs.push_back(netsim::make_packet(router.route(src, dst), 1, 6,
                                        rng.uniform_int(0, 64)));
  }

  std::int64_t cycles = 0;
  for (auto _ : state) {
    netsim::WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 2});
    for (const auto& spec : specs) sim.submit(spec);
    const auto result = sim.run();
    cycles += result.cycles;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(cycles);
  state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_WormholeBatch)
    ->Args({16, 32})
    ->Args({16, 256})
    ->Args({32, 256})
    ->Unit(benchmark::kMillisecond);

void BM_TrafficSimEndToEnd(benchmark::State& state) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(24);
  stats::Rng rng(3);
  const auto faults = fault::clustered(m, 3, 8, rng);
  const auto labeled = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);
  netsim::TrafficSimConfig config;
  config.injection_rate = 0.004;
  config.warm_cycles = 256;
  config.num_vcs = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netsim::run_traffic_sim(m, blocked, router, config));
  }
}
BENCHMARK(BM_TrafficSimEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
