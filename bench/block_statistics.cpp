// Structural statistics of faulty blocks and disabled regions vs fault
// density — the mechanism behind Figure 5 (c)/(d)'s high enabled ratio
// (random faults make small blocks; small blocks re-enable easily).
#include <iostream>

#include "analysis/block_stats.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  const bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "Faulty-block structure on a " << opts.n << "x" << opts.n
            << " mesh (Definition 2b), " << opts.trials
            << " trials per point\n\n";

  analysis::BlockStatsConfig config;
  config.n = opts.n;
  config.fault_counts = bench::sweep(opts);
  config.trials = opts.trials;
  config.seed = opts.seed;
  const auto rows = analysis::run_block_stats(config);
  bench::emit(opts, "block_statistics", analysis::block_stats_table(rows));

  std::cout << "Expected shape: at the paper's densities (f <= 1% of nodes) "
               "blocks are overwhelmingly singletons, mean block diameter "
               "stays near zero, and disabled regions track block sizes — "
               "the reason phase two re-enables nearly everything.\n";
  return 0;
}
