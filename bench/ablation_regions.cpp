// Ablation: what the router must avoid — raw faults (no labeling, arbitrary
// shapes), rectangular faulty blocks (the classic model), or this paper's
// orthogonal convex disabled regions. Measures the price of each model:
// sacrificed nonfaulty nodes, delivery rate and path stretch under
// boundary-following fault-tolerant routing.
#include <iostream>

#include "analysis/ablation.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  // Routing all-pairs is costlier than labeling; default to a smaller
  // machine unless the user overrides.
  if (opts.n == 100) opts.n = 32;

  std::cout << "Ablation: routing against raw faults vs faulty blocks vs "
               "disabled regions on a "
            << opts.n << "x" << opts.n << " mesh\n\n";

  analysis::RoutingAblationConfig config;
  config.n = opts.n;
  for (std::int32_t f = 0; f <= opts.fmax; f += 2 * opts.fstep) {
    if (f > 0) config.fault_counts.push_back(f);
  }
  config.trials = opts.quick ? 5 : 15;
  config.pairs = opts.quick ? 100 : 400;
  config.seed = opts.seed;
  const auto rows = analysis::run_routing_ablation(config);
  bench::emit(opts, "ablation_regions",
              analysis::routing_ablation_table(rows));

  std::cout
      << "Expected shape: disabled-regions sacrifice no more nonfaulty "
         "nodes than faulty-blocks (often far fewer) while both deliver "
         "100%; raw faults sacrifice nothing but give the router concave "
         "obstacles (backtracking, occasional failures).\n";
  return 0;
}
