# Interface target carrying the project-wide warning set.
add_library(ocp_warnings INTERFACE)

target_compile_options(ocp_warnings INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wconversion
  -Wsign-conversion
  -Wnon-virtual-dtor
  -Wold-style-cast
  -Wcast-align
  -Wunused
  -Woverloaded-virtual
  -Wnull-dereference
  -Wdouble-promotion
  -Wimplicit-fallthrough
  # Partial designated initialization of option structs whose remaining
  # members carry default member initializers is idiomatic here
  # (PipelineOptions{.engine = ...} etc.); -Wextra's missing-field warning
  # fires on every such site.
  -Wno-missing-field-initializers)

if(OCP_WERROR)
  target_compile_options(ocp_warnings INTERFACE -Werror)
endif()
