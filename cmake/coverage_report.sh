#!/usr/bin/env bash
# Aggregates a line-coverage summary from an OCP_COVERAGE build tree and
# enforces the coverage ratchet: the TOTAL line-coverage percentage must not
# fall below the baseline committed in cmake/coverage_baseline.txt.
#
# Usage: coverage_report.sh <gcc|clang> <build-dir> <source-dir>
#
# gcc mode parses `gcov -n` summaries of every .gcda in the build tree and
# prints a per-file table for first-party sources; clang mode merges the
# .profraw files the `coverage` target produced and delegates to
# `llvm-cov report`. Either way the summary lands in <build-dir>/coverage/.
#
# The ratchet only moves up: when a PR raises coverage, bump the baseline in
# the same commit. OCP_COVERAGE_BASELINE=<pct> overrides the committed value
# (e.g. 0 to inspect a partial tree without failing).
set -euo pipefail

mode=$1
build=$2
src=$3
out="$build/coverage"
mkdir -p "$out"

baseline_file="$src/cmake/coverage_baseline.txt"
baseline="${OCP_COVERAGE_BASELINE:-$(cat "$baseline_file" 2>/dev/null || echo 0)}"
dirs_baseline_file="$src/cmake/coverage_dirs_baseline.txt"

# ratchet <total-pct>: exit 1 when the measured total is below the baseline.
ratchet() {
  awk -v got="$1" -v want="$baseline" 'BEGIN {
    if (got + 1e-9 < want) {
      printf "coverage ratchet: TOTAL %.1f%% fell below the committed " \
             "baseline %.1f%% (cmake/coverage_baseline.txt)\n", got, want
      exit 1
    }
    printf "coverage ratchet: TOTAL %.1f%% >= baseline %.1f%%\n", got, want
  }'
}

# dir_deltas: reads "<pct> <hit> <total> <dir>" rows on stdin (one per
# src/<dir>), prints the per-directory table with deltas against the
# committed cmake/coverage_dirs_baseline.txt ("<dir> <pct>" rows) so a
# TOTAL-level regression is attributable to the subsystem that moved.
# Report-only: the TOTAL ratchet above stays the gate.
dir_deltas() {
  awk -v basefile="$dirs_baseline_file" '
    BEGIN {
      have_base = 0
      while ((getline line < basefile) > 0) {
        n = split(line, f, " ")
        if (n == 2 && f[1] !~ /^#/) { base[f[1]] = f[2] + 0; have_base = 1 }
      }
      close(basefile)
      printf "%-18s %8s %12s %10s\n", "directory", "lines%", "hit/total",
             "delta"
    }
    {
      pct = $1 + 0; hit = $2; total = $3; dir = $4
      if (have_base && (dir in base)) {
        delta = sprintf("%+.1f", pct - base[dir])
      } else {
        delta = have_base ? "new" : "-"
      }
      printf "%-18s %7.1f%% %12s %10s\n", dir, pct, hit "/" total, delta
    }
  '
}

if [ "$mode" = clang ]; then
  llvm-profdata merge -sparse "$out"/*.profraw -o "$out/merged.profdata"
  objects=""
  while IFS= read -r bin; do
    objects="$objects --object $bin"
  done < <(find "$build" -maxdepth 2 -type f -perm -111 \
             \( -name '*_tests' -o -name 'check_fuzz' \))
  # shellcheck disable=SC2086
  llvm-cov report --instr-profile "$out/merged.profdata" $objects \
    "$src/src" | tee "$out/summary.txt"
  # llvm-cov's TOTAL row reports region, function, line (and, when branch
  # counting is on, branch) coverage; line coverage is the third percentage,
  # preceded by the "Lines" and "Missed Lines" counts.
  awk '
    /^(TOTAL|Filename|-)/ || NF == 0 { next }
    {
      n = 0
      for (i = 1; i <= NF; ++i) {
        if ($i ~ /%$/) {
          ++n
          if (n == 3) {
            lines = $(i - 2) + 0; missed = $(i - 1) + 0
            split($1, parts, "/")
            dir = "src/" parts[1]
            dh[dir] += lines - missed; dt[dir] += lines
          }
        }
      }
    }
    END {
      for (d in dt) {
        if (dt[d] > 0) {
          printf "%.1f %d %d %s\n", 100 * dh[d] / dt[d], dh[d], dt[d], d
        }
      }
    }
  ' "$out/summary.txt" | sort -k4 > "$out/dirs_raw.txt"
  if [ -s "$out/dirs_raw.txt" ]; then
    echo "== per-directory line coverage"
    dir_deltas < "$out/dirs_raw.txt" | tee "$out/dirs.txt"
  fi
  total=$(awk '/^TOTAL/ {
    n = 0
    for (i = 1; i <= NF; ++i) {
      if ($i ~ /%$/) { ++n; if (n == 3) { gsub(/%/, "", $i); print $i } }
    }
  }' "$out/summary.txt")
  if [ -z "$total" ]; then
    echo "coverage ratchet: no TOTAL line in llvm-cov output" >&2
    exit 1
  fi
  ratchet "$total"
  exit 0
fi

# gcc/gcov: one `gcov -n` pass per object directory, parsed from stdout so
# header results from different translation units aggregate by max.
find "$build" -name '*.gcda' -print0 |
  xargs -0 -I{} sh -c 'gcov -n -r -s "$1" -o "$(dirname "{}")" "{}" 2>/dev/null' _ "$src" |
  awk -v out="$out/summary.txt" '
    /^File / { f = $2; gsub(/\x27/, "", f) }
    /^Lines executed:/ {
      split($2, a, ":"); pct = a[2] + 0; n = $4 + 0
      if (f != "" && n >= total[f]) {
        total[f] = n; hit[f] = int(pct * n / 100 + 0.5)
      }
      f = ""
    }
    END {
      th = 0; tt = 0
      cmd = "sort -k3 | tee " out
      for (f in total) {
        printf "%6.1f%%  %5d/%-5d  %s\n",
               100 * hit[f] / total[f], hit[f], total[f], f | cmd
        th += hit[f]; tt += total[f]
        split(f, parts, "/")
        d = (parts[1] == "src" && parts[3] != "") ? parts[1] "/" parts[2] \
                                                  : parts[1]
        dh[d] += hit[f]; dt[d] += total[f]
      }
      close(cmd)
      dirsout = out
      sub(/summary\.txt$/, "dirs_raw.txt", dirsout)
      for (d in dt) {
        if (dt[d] > 0) {
          printf "%.1f %d %d %s\n",
                 100 * dh[d] / dt[d], dh[d], dt[d], d > dirsout
        }
      }
      if (tt > 0) {
        printf "TOTAL %.1f%% (%d of %d lines)\n", 100 * th / tt, th, tt
      } else {
        print "No coverage data found - run ctest in the coverage tree first."
      }
    }
  ' | tee "$out/report.txt"

# Attribute the total to subsystems before gating on it: a TOTAL move shows
# up here as the directory that caused it.
if [ -s "$out/dirs_raw.txt" ]; then
  echo "== per-directory line coverage"
  sort -k4 -o "$out/dirs_raw.txt" "$out/dirs_raw.txt"
  dir_deltas < "$out/dirs_raw.txt" | tee "$out/dirs.txt"
fi

total=$(awk '/^TOTAL / { gsub(/%/, "", $2); print $2 }' "$out/report.txt")
if [ -z "$total" ]; then
  echo "coverage ratchet: no coverage data to compare against the baseline" >&2
  exit 1
fi
ratchet "$total"
