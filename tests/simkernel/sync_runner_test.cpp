#include "simkernel/sync_runner.hpp"

#include <gtest/gtest.h>

#include "grid/cell_set.hpp"

namespace ocp::sim {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// Test protocol: distributed BFS. Every node computes its hop distance to
/// the nearest seed by exchanging its current estimate with its neighbors.
/// Converges in exactly max-distance rounds, which makes round accounting
/// easy to assert.
class BfsProtocol {
 public:
  struct State {
    std::int32_t distance = kInf;
    friend constexpr bool operator==(const State&, const State&) = default;
  };
  using Message = std::int32_t;

  static constexpr std::int32_t kInf = 1 << 20;

  explicit BfsProtocol(const grid::CellSet& seeds) : seeds_(&seeds) {}

  [[nodiscard]] State init(Coord c) const {
    return {seeds_->contains(c) ? 0 : kInf};
  }
  [[nodiscard]] Message announce(const State& s) const { return s.distance; }
  [[nodiscard]] Message ghost_message() const { return kInf; }
  [[nodiscard]] bool participates(const State&) const { return true; }
  [[nodiscard]] bool update(State& s, const Inbox<Message>& inbox) const {
    std::int32_t best = s.distance;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (inbox[d] != kInf) best = std::min(best, inbox[d] + 1);
    }
    if (best != s.distance) {
      s.distance = best;
      return true;
    }
    return false;
  }

 private:
  const grid::CellSet* seeds_;
};

static_assert(SyncProtocol<BfsProtocol>);

TEST(SyncRunnerTest, BfsDistancesAreCorrect) {
  const Mesh2D m(7, 5);
  const grid::CellSet seeds{m, {{0, 0}}};
  const auto result = run_sync(m, BfsProtocol(seeds));
  for (std::int32_t x = 0; x < 7; ++x) {
    for (std::int32_t y = 0; y < 5; ++y) {
      EXPECT_EQ((result.states[{x, y}].distance), x + y);
    }
  }
}

TEST(SyncRunnerTest, RoundsEqualEccentricity) {
  const Mesh2D m(7, 5);
  const grid::CellSet seeds{m, {{0, 0}}};
  const auto result = run_sync(m, BfsProtocol(seeds));
  // Farthest node is at distance 6 + 4 = 10; information travels one hop per
  // round.
  EXPECT_EQ(result.stats.rounds_to_quiesce, 10);
  EXPECT_EQ(result.stats.rounds_executed, 11);  // final all-quiet round
}

TEST(SyncRunnerTest, AlreadyStableInputQuiescesInZeroRounds) {
  const Mesh2D m(4, 4);
  grid::CellSet seeds(m);
  for (std::size_t i = 0; i < 16; ++i) seeds.insert(m.coord(i));  // all seeds
  const auto result = run_sync(m, BfsProtocol(seeds));
  EXPECT_EQ(result.stats.rounds_to_quiesce, 0);
  EXPECT_EQ(result.stats.rounds_executed, 1);
  EXPECT_EQ(result.stats.state_changes, 0u);
}

TEST(SyncRunnerTest, DenseAndFrontierAgree) {
  const Mesh2D m(9, 9);
  const grid::CellSet seeds{m, {{4, 4}, {0, 8}}};
  RunOptions dense{.mode = RunMode::Dense};
  RunOptions frontier{.mode = RunMode::Frontier};
  const auto a = run_sync(m, BfsProtocol(seeds), dense);
  const auto b = run_sync(m, BfsProtocol(seeds), frontier);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.stats.rounds_to_quiesce, b.stats.rounds_to_quiesce);
  EXPECT_EQ(a.stats.state_changes, b.stats.state_changes);
  EXPECT_EQ(a.stats.messages_broadcast, b.stats.messages_broadcast);
  EXPECT_EQ(a.stats.messages_event_driven, b.stats.messages_event_driven);
}

TEST(SyncRunnerTest, MessageAccounting) {
  const Mesh2D m(3, 3);
  const grid::CellSet seeds{m, {{1, 1}}};
  const auto result = run_sync(m, BfsProtocol(seeds));
  // 3x3 mesh: total degree = 4*2 + 4*3 + 1*4 = 24 per round.
  EXPECT_EQ(result.stats.messages_broadcast,
            24u * static_cast<std::uint64_t>(result.stats.rounds_executed));
  // Event-driven: one initial announcement per link endpoint plus one per
  // change; must be no more than broadcast.
  EXPECT_LE(result.stats.messages_event_driven,
            result.stats.messages_broadcast);
  EXPECT_GE(result.stats.messages_event_driven, 24u);
}

TEST(SyncRunnerTest, TorusHasNoGhostInbox) {
  const Mesh2D m(5, 5, mesh::Topology::Torus);
  const grid::CellSet seeds{m, {{0, 0}}};
  const auto result = run_sync(m, BfsProtocol(seeds));
  // On a torus distances wrap: node (4,4) is 2 away from (0,0).
  EXPECT_EQ((result.states[{4, 4}].distance), 2);
  EXPECT_EQ((result.states[{2, 2}].distance), 4);
}

TEST(SyncRunnerTest, ThrowsWhenRoundCapExceeded) {
  const Mesh2D m(8, 8);
  const grid::CellSet seeds{m, {{0, 0}}};
  RunOptions opts;
  opts.max_rounds = 3;  // needs 14
  EXPECT_THROW(run_sync(m, BfsProtocol(seeds), opts), std::runtime_error);
}

/// Ghost-aware protocol: a node becomes marked when it has a ghost neighbor.
/// Verifies the kernel substitutes ghost messages exactly on the open
/// boundary.
class GhostProbeProtocol {
 public:
  struct State {
    bool marked = false;
    friend constexpr bool operator==(const State&, const State&) = default;
  };
  using Message = std::uint8_t;

  [[nodiscard]] State init(Coord) const { return {}; }
  [[nodiscard]] Message announce(const State&) const { return 0; }
  [[nodiscard]] Message ghost_message() const { return 1; }
  [[nodiscard]] bool participates(const State&) const { return true; }
  [[nodiscard]] bool update(State& s, const Inbox<Message>& inbox) const {
    bool ghost = false;
    for (mesh::Dir d : mesh::kAllDirs) ghost = ghost || inbox.is_ghost(d);
    if (ghost && !s.marked) {
      s.marked = true;
      return true;
    }
    return false;
  }
};

TEST(SyncRunnerTest, GhostMessagesOnlyOnMeshBoundary) {
  const Mesh2D m(5, 4);
  const auto result = run_sync(m, GhostProbeProtocol{});
  for (std::int32_t x = 0; x < 5; ++x) {
    for (std::int32_t y = 0; y < 4; ++y) {
      const bool boundary = x == 0 || x == 4 || y == 0 || y == 3;
      EXPECT_EQ((result.states[{x, y}].marked), boundary);
    }
  }
}

TEST(SyncRunnerTest, NoGhostsOnTorus) {
  const Mesh2D m(5, 4, mesh::Topology::Torus);
  const auto result = run_sync(m, GhostProbeProtocol{});
  for (const auto& s : result.states) EXPECT_FALSE(s.marked);
}

/// Protocol whose participating set shrinks as the run progresses: a node
/// starts with a countdown of its x coordinate and participates (and
/// broadcasts) only while the countdown is positive. Exercises the per-round
/// broadcast accounting — a single participating set captured from the
/// initial states would overcount every later round.
class CountdownProtocol {
 public:
  struct State {
    std::int32_t v = 0;
    friend constexpr bool operator==(const State&, const State&) = default;
  };
  using Message = std::int32_t;

  [[nodiscard]] State init(Coord c) const { return {c.x}; }
  [[nodiscard]] Message announce(const State& s) const { return s.v; }
  [[nodiscard]] Message ghost_message() const { return 0; }
  [[nodiscard]] bool participates(const State& s) const { return s.v > 0; }
  [[nodiscard]] bool update(State& s, const Inbox<Message>&) const {
    --s.v;  // participating nodes count down; update is only run while v > 0
    return true;
  }
};

static_assert(SyncProtocol<CountdownProtocol>);

TEST(SyncRunnerTest, BroadcastCountTracksShrinkingParticipation) {
  const Mesh2D m(6, 4);
  RunOptions dense{.mode = RunMode::Dense};
  RunOptions frontier{.mode = RunMode::Frontier};
  const auto a = run_sync(m, CountdownProtocol{}, dense);
  const auto b = run_sync(m, CountdownProtocol{}, frontier);

  // A node at column x participates in rounds 1..x; the run quiesces once
  // the last column reaches zero.
  EXPECT_EQ(a.stats.rounds_to_quiesce, 5);

  // The paper's broadcast model, recomputed from the states each round: in
  // round r exactly the nodes with x >= r still broadcast.
  std::uint64_t expected = 0;
  for (std::int32_t r = 1; r <= a.stats.rounds_executed; ++r) {
    for (std::int32_t x = r; x < m.width(); ++x) {
      for (std::int32_t y = 0; y < m.height(); ++y) {
        expected += m.neighbors({x, y}).size();
      }
    }
  }
  EXPECT_EQ(a.stats.messages_broadcast, expected);

  // Dense recomputes the participating set; frontier maintains it
  // incrementally. They must agree exactly.
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.stats.rounds_to_quiesce, b.stats.rounds_to_quiesce);
  EXPECT_EQ(a.stats.rounds_executed, b.stats.rounds_executed);
  EXPECT_EQ(a.stats.state_changes, b.stats.state_changes);
  EXPECT_EQ(a.stats.messages_broadcast, b.stats.messages_broadcast);
  EXPECT_EQ(a.stats.messages_event_driven, b.stats.messages_event_driven);
}

}  // namespace
}  // namespace ocp::sim
