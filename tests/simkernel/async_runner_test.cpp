#include "simkernel/async_runner.hpp"

#include <gtest/gtest.h>

#include "core/activation_protocol.hpp"
#include "core/reference.hpp"
#include "core/safety_protocol.hpp"
#include "fault/generators.hpp"

namespace ocp::sim {
namespace {

using mesh::Mesh2D;

// The labeling protocols are monotone, so any asynchronous schedule must
// reach the same fixpoint as the synchronous lock-step run. This is the
// paper's implicit justification for assuming synchrony "to simplify the
// discussion" — we check it explicitly.

TEST(AsyncRunnerTest, SafetyFixpointMatchesSyncOnRandomInstances) {
  const Mesh2D m(24, 24);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 30, rng);
    for (auto def : {labeling::SafeUnsafeDef::Def2a,
                     labeling::SafeUnsafeDef::Def2b}) {
      const labeling::SafetyProtocol proto(faults, def);
      const auto sync = run_sync(m, proto);
      stats::Rng sched(seed * 7 + 1);
      const auto async = run_async(m, proto, sched);
      EXPECT_EQ(sync.states, async.states)
          << "seed " << seed << " def " << to_string(def);
    }
  }
}

TEST(AsyncRunnerTest, ActivationFixpointMatchesSyncOnRandomInstances) {
  const Mesh2D m(24, 24);
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 40, rng);
    const auto safety =
        labeling::reference_safety(faults, labeling::SafeUnsafeDef::Def2b);
    const labeling::ActivationProtocol proto(faults, safety);
    const auto sync = run_sync(m, proto);
    stats::Rng sched(seed + 5);
    const auto async = run_async(m, proto, sched);
    EXPECT_EQ(sync.states, async.states) << "seed " << seed;
  }
}

TEST(AsyncRunnerTest, DifferentSchedulesSameFixpoint) {
  const Mesh2D m(16, 16);
  stats::Rng rng(7);
  const auto faults = fault::uniform_random(m, 25, rng);
  const labeling::SafetyProtocol proto(faults,
                                       labeling::SafeUnsafeDef::Def2b);
  stats::Rng sched1(1);
  stats::Rng sched2(2);
  const auto a = run_async(m, proto, sched1);
  const auto b = run_async(m, proto, sched2);
  EXPECT_EQ(a.states, b.states);
}

TEST(AsyncRunnerTest, StatsAreAccounted) {
  const Mesh2D m(10, 10);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 10, rng);
  const labeling::SafetyProtocol proto(faults,
                                       labeling::SafeUnsafeDef::Def2b);
  stats::Rng sched(4);
  const auto result = run_async(m, proto, sched);
  EXPECT_GE(result.stats.sweeps, 1);
  EXPECT_GT(result.stats.activations, 0u);
  // Faulty nodes never run updates: at most nonfaulty-per-sweep activations.
  EXPECT_LE(result.stats.activations,
            static_cast<std::uint64_t>(result.stats.sweeps) * (100 - 10));
}

TEST(AsyncRunnerTest, SweepCapThrows) {
  const Mesh2D m(12, 12);
  stats::Rng rng(5);
  // A dense diagonal fault band forces several sweeps... but async sweeps
  // converge fast; instead verify the cap mechanism with max_sweeps = 0.
  const auto faults = fault::uniform_random(m, 20, rng);
  const labeling::SafetyProtocol proto(faults,
                                       labeling::SafeUnsafeDef::Def2a);
  stats::Rng sched(6);
  EXPECT_THROW(run_async(m, proto, sched, 0), std::runtime_error);
}

}  // namespace
}  // namespace ocp::sim
