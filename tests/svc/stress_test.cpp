// Serving under churn: concurrent query threads racing a live ingest loop
// must only ever observe oracle-valid snapshots with monotonically
// non-decreasing epochs, and the workload's replay identity (stream digest,
// final label digest, final fault set) must be bit-identical for any
// query-thread count. Run under OCP_SANITIZE=thread this doubles as the
// subsystem's data-race hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fault/generators.hpp"
#include "svc/loadgen.hpp"

namespace ocp::svc {
namespace {

using mesh::Mesh2D;

TEST(SvcStressTest, ConcurrentReadersObserveOnlyValidMonotoneSnapshots) {
  const Mesh2D m(16, 16);
  stats::Rng rng(41);
  const auto initial = fault::uniform_random(m, 6, rng);
  const auto stream = generate_event_stream(m, initial, 60, 0.4, 43);

  Service service(initial, {.max_batch = 4});
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> epoch_regressions{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&service, &done, &violations, &epoch_regressions] {
      std::uint64_t last_epoch = 0;
      std::uint64_t checked_epoch = ~0ULL;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = service.snapshot();
        if (snap->epoch() < last_epoch) ++epoch_regressions;
        last_epoch = snap->epoch();
        // Run the full 16-check oracle once per freshly observed epoch
        // (it is too expensive to run on every spin).
        if (snap->epoch() != checked_epoch) {
          checked_epoch = snap->epoch();
          if (!snap->validate(labeling::SafeUnsafeDef::Def2b).ok()) {
            ++violations;
          }
        }
      }
    });
  }

  for (const FaultEvent& event : stream) {
    while (service.submit(event) != SubmitStatus::Accepted) {
      std::this_thread::yield();
    }
  }
  service.flush();
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(epoch_regressions.load(), 0);
  EXPECT_GE(service.snapshot()->epoch(), 1u);
}

TEST(SvcStressTest, ReplayIdenticalAtOneTwoAndEightQueryThreads) {
  SvcLoadConfig config;
  config.mesh_side = 16;
  config.initial_faults = 6;
  config.events = 48;
  config.queries_per_thread = 300;
  config.seed = 7;

  config.query_threads = 1;
  const SvcLoadResult one = run_svc_load(config);
  config.query_threads = 2;
  const SvcLoadResult two = run_svc_load(config);
  config.query_threads = 8;
  const SvcLoadResult eight = run_svc_load(config);

  // The event stream and the final labeling are pure functions of the seed,
  // independent of how many query threads race the writer.
  EXPECT_EQ(one.stream_digest, two.stream_digest);
  EXPECT_EQ(one.stream_digest, eight.stream_digest);
  EXPECT_EQ(one.final_digest, two.final_digest);
  EXPECT_EQ(one.final_digest, eight.final_digest);
  EXPECT_EQ(one.final_faults, two.final_faults);
  EXPECT_EQ(one.final_faults, eight.final_faults);

  for (const SvcLoadResult* r : {&one, &two, &eight}) {
    EXPECT_TRUE(r->epochs_monotone);
    EXPECT_EQ(r->queries_rejected, 0u);  // uncapped query front
    EXPECT_GT(r->queries_ok, 0u);
  }
  EXPECT_EQ(eight.queries_ok, 8u * config.queries_per_thread);
}

TEST(SvcStressTest, LoadRunQuiescesToStreamFinalState) {
  SvcLoadConfig config;
  config.mesh_side = 16;
  config.initial_faults = 5;
  config.events = 64;
  config.query_threads = 2;
  config.queries_per_thread = 200;
  config.seed = 3;
  const SvcLoadResult result = run_svc_load(config);

  // Recompute the expected final fault set by replaying the same seeded
  // stream against a shadow set.
  const Mesh2D m(config.mesh_side, config.mesh_side);
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const auto initial =
      fault::uniform_random(m, config.initial_faults, fault_rng);
  const auto stream = generate_event_stream(
      m, initial, config.events, config.repair_fraction, stream_seed);
  EXPECT_EQ(result.stream_digest, event_stream_digest(stream));

  grid::CellSet shadow = initial;
  for (const FaultEvent& e : stream) {
    if (e.kind == EventKind::Fault) {
      shadow.insert(e.node);
    } else {
      shadow.erase(e.node);
    }
  }
  EXPECT_EQ(result.final_faults, shadow.size());
  EXPECT_EQ(result.final_digest,
            Snapshot::build(0, labeling::MaintainedLabeling(shadow))
                ->label_digest());
}

}  // namespace
}  // namespace ocp::svc
