#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace ocp::svc {
namespace {

using namespace std::chrono_literals;
using mesh::Coord;
using mesh::Mesh2D;

grid::CellSet empty16() { return grid::CellSet(Mesh2D(16, 16)); }

TEST(ServiceTest, SubmitFlushQueryRoundTrip) {
  Service service(empty16());
  ASSERT_EQ(service.submit({EventKind::Fault, {5, 5}}),
            SubmitStatus::Accepted);
  service.flush();

  const StatusAnswer answer = service.query_status({5, 5});
  EXPECT_EQ(answer.status, QueryStatus::Ok);
  EXPECT_EQ(answer.node, NodeStatus::Faulty);
  EXPECT_GE(answer.epoch, 1u);

  // Repair and observe the node rejoin.
  ASSERT_EQ(service.submit({EventKind::Repair, {5, 5}}),
            SubmitStatus::Accepted);
  service.flush();
  EXPECT_EQ(service.query_status({5, 5}).node, NodeStatus::Enabled);
}

TEST(ServiceTest, WaitForEpochGivesReadYourWrites) {
  Service service(empty16());
  ASSERT_EQ(service.submit({EventKind::Fault, {3, 3}}),
            SubmitStatus::Accepted);
  ASSERT_EQ(service.wait_for_epoch(1, 5000ms), QueryStatus::Ok);
  EXPECT_EQ(service.query_status({3, 3}).node, NodeStatus::Faulty);
}

TEST(ServiceTest, WaitForEpochTimesOutWhilePaused) {
  Service service(empty16(), {.start_paused = true});
  ASSERT_EQ(service.submit({EventKind::Fault, {3, 3}}),
            SubmitStatus::Accepted);
  EXPECT_EQ(service.wait_for_epoch(1, 20ms), QueryStatus::Timeout);
  // Still serving epoch 0 while held.
  EXPECT_EQ(service.query_status({3, 3}).node, NodeStatus::Enabled);
  service.resume();
  EXPECT_EQ(service.wait_for_epoch(1, 5000ms), QueryStatus::Ok);
}

TEST(ServiceTest, PausedServiceOverloadsDeterministically) {
  // With the ingest loop held, the bounded queue fills and the (cap+1)-th
  // submission is rejected with a typed verdict — no blocking, no drop of
  // accepted events.
  Service service(empty16(),
                  {.queue_capacity = 4, .start_paused = true});
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(service.submit({EventKind::Fault, {i, 0}}),
              SubmitStatus::Accepted);
  }
  EXPECT_EQ(service.submit({EventKind::Fault, {9, 9}}),
            SubmitStatus::Overloaded);
  EXPECT_EQ(service.stats().events_rejected, 1u);

  // flush() un-holds the loop rather than deadlocking; every accepted
  // event lands.
  service.flush();
  const auto snap = service.snapshot();
  EXPECT_EQ(snap->faults().size(), 4u);
  EXPECT_FALSE(snap->faults().contains({9, 9}));
}

TEST(ServiceTest, CoalescedBurstPublishesAtMostOneEpochPerBatch) {
  Service service(empty16(), {.start_paused = true});
  // A held queue guarantees these drain as one batch.
  ASSERT_EQ(service.submit({EventKind::Fault, {5, 5}}),
            SubmitStatus::Accepted);
  ASSERT_EQ(service.submit({EventKind::Fault, {5, 5}}),
            SubmitStatus::Accepted);
  ASSERT_EQ(service.submit({EventKind::Repair, {5, 5}}),
            SubmitStatus::Accepted);
  service.flush();
  // fault+dup+repair of one node collapses to nothing: epoch 0 still serves.
  EXPECT_EQ(service.snapshot()->epoch(), 0u);
  EXPECT_TRUE(service.snapshot()->faults().empty());
  EXPECT_EQ(service.stats().ingest.coalesced, 3u);
}

TEST(ServiceTest, InvalidCoordinatesGetTypedAnswers) {
  Service service(empty16());
  EXPECT_EQ(service.query_status({-1, 0}).status,
            QueryStatus::InvalidArgument);
  EXPECT_EQ(service.query_region({16, 16}).status,
            QueryStatus::InvalidArgument);
  EXPECT_EQ(service.query_route({0, 0}, {0, 99}).status,
            QueryStatus::InvalidArgument);
}

TEST(ServiceTest, RegionQueryDescribesDisabledRegion) {
  const Mesh2D m(16, 16);
  Service service(grid::CellSet{m, {{5, 5}, {6, 6}}});
  const RegionAnswer faulty = service.query_region({5, 5});
  ASSERT_EQ(faulty.status, QueryStatus::Ok);
  EXPECT_GE(faulty.region_id, 0);
  // {5,5} and {6,6} merge into one 2x2 faulty block, but the bridging
  // nodes stay enabled (phase-2 activation), so the disabled region is
  // just the two faults.
  EXPECT_EQ(faulty.region_size, 2u);
  EXPECT_EQ(faulty.fault_count, 2u);

  const RegionAnswer healthy = service.query_region({0, 0});
  ASSERT_EQ(healthy.status, QueryStatus::Ok);
  EXPECT_EQ(healthy.region_id, -1);
  EXPECT_EQ(healthy.region_size, 0u);
}

TEST(ServiceTest, RouteQueryDetoursAroundDisabledRegion) {
  const Mesh2D m(16, 16);
  Service service(grid::CellSet{m, {{7, 7}, {8, 7}}});
  const RouteAnswer answer = service.query_route({0, 7}, {15, 7});
  ASSERT_EQ(answer.status, QueryStatus::Ok);
  EXPECT_TRUE(answer.route.delivered());
  for (const Coord c : answer.route.path) {
    EXPECT_NE(service.query_status(c).node, NodeStatus::Faulty);
  }
}

TEST(ServiceTest, BatchAnswersAgainstOneEpoch) {
  const Mesh2D m(16, 16);
  Service service(grid::CellSet{m, {{4, 4}}});
  const std::vector<QueryItem> items = {
      {QueryKind::Status, {4, 4}, {}},
      {QueryKind::Region, {4, 4}, {}},
      {QueryKind::Route, {0, 0}, {15, 15}},
      {QueryKind::Status, {-3, 0}, {}},  // invalid item, batch continues
  };
  const BatchAnswer answer = service.query_batch(items);
  ASSERT_EQ(answer.status, QueryStatus::Ok);
  EXPECT_EQ(answer.completed, 4u);
  ASSERT_EQ(answer.items.size(), 4u);
  EXPECT_EQ(answer.items[0].node, NodeStatus::Faulty);
  EXPECT_GE(answer.items[1].region_id, 0);
  EXPECT_EQ(answer.items[2].route_status, routing::RouteStatus::Delivered);
  EXPECT_GT(answer.items[2].hops, 0);
  EXPECT_EQ(answer.items[3].status, QueryStatus::InvalidArgument);
}

TEST(ServiceTest, ExpiredBatchDeadlineYieldsTypedTimeouts) {
  Service service(empty16());
  const std::vector<QueryItem> items = {{QueryKind::Status, {1, 1}, {}},
                                        {QueryKind::Status, {2, 2}, {}}};
  // A deadline in the past: nothing executes, every item times out.
  const auto past = std::chrono::steady_clock::now() - 1s;
  const BatchAnswer answer = service.query_batch(items, past);
  EXPECT_EQ(answer.status, QueryStatus::Timeout);
  EXPECT_EQ(answer.completed, 0u);
  for (const auto& item : answer.items) {
    EXPECT_EQ(item.status, QueryStatus::Timeout);
  }
}

TEST(ServiceTest, InflightCapOfOneStillServesSequentialQueries) {
  Service service(empty16(), {.max_inflight_queries = 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(service.query_status({i, i}).status, QueryStatus::Ok);
  }
  EXPECT_EQ(service.stats().query_overloads, 0u);
}

TEST(ServiceTest, StatsReflectQueueAndIngest) {
  Service service(empty16());
  ASSERT_EQ(service.submit({EventKind::Fault, {2, 2}}),
            SubmitStatus::Accepted);
  ASSERT_EQ(service.submit({EventKind::Fault, {9, 9}}),
            SubmitStatus::Accepted);
  service.flush();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.events_accepted, 2u);
  EXPECT_EQ(stats.events_rejected, 0u);
  EXPECT_EQ(stats.ingest.applied, 2u);
  EXPECT_GE(stats.ingest.epochs_published, 1u);
  EXPECT_EQ(stats.epoch, service.snapshot()->epoch());
}

TEST(ServiceTest, DestructorAppliesAcceptedEventsBeforeExit) {
  // Shutdown with a queued backlog must drain, not drop: accepted events
  // are a contract.
  const Mesh2D m(16, 16);
  {
    Service service(grid::CellSet(m), {.start_paused = true});
    for (int i = 0; i < 6; ++i) {
      ASSERT_EQ(service.submit({EventKind::Fault, {i, i}}),
                SubmitStatus::Accepted);
    }
    service.resume();
  }  // destructor joins the ingest thread after the queue drains
  SUCCEED();
}

}  // namespace
}  // namespace ocp::svc
