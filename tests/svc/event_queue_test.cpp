#include "svc/event_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "chaos/plan.hpp"

namespace ocp::svc {
namespace {

TEST(EventQueueTest, DrainsInFifoOrder) {
  EventQueue q(8);
  ASSERT_EQ(q.push({EventKind::Fault, {1, 1}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Repair, {2, 2}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {3, 3}}), SubmitStatus::Accepted);
  EXPECT_EQ(q.depth(), 3u);

  const auto batch = q.try_drain(16);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (FaultEvent{EventKind::Fault, {1, 1}}));
  EXPECT_EQ(batch[1], (FaultEvent{EventKind::Repair, {2, 2}}));
  EXPECT_EQ(batch[2], (FaultEvent{EventKind::Fault, {3, 3}}));
  EXPECT_EQ(q.depth(), 0u);
}

TEST(EventQueueTest, MaxBatchBoundsEachDrain) {
  EventQueue q(16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.push({EventKind::Fault, {i, 0}}), SubmitStatus::Accepted);
  }
  EXPECT_EQ(q.try_drain(2).size(), 2u);
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.try_drain(2).size(), 2u);
  EXPECT_EQ(q.try_drain(2).size(), 1u);
  EXPECT_TRUE(q.try_drain(2).empty());
}

TEST(EventQueueTest, FullQueueRejectsWithOverloaded) {
  EventQueue q(2);
  ASSERT_EQ(q.push({EventKind::Fault, {0, 0}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {1, 0}}), SubmitStatus::Accepted);
  EXPECT_EQ(q.push({EventKind::Fault, {2, 0}}), SubmitStatus::Overloaded);
  EXPECT_EQ(q.depth(), 2u);  // the rejected event was not enqueued
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.rejected(), 1u);

  // Draining frees capacity; admission recovers.
  (void)q.try_drain(1);
  EXPECT_EQ(q.push({EventKind::Fault, {2, 0}}), SubmitStatus::Accepted);
}

TEST(EventQueueTest, CloseStopsAdmissionButKeepsQueuedEventsDrainable) {
  EventQueue q(8);
  ASSERT_EQ(q.push({EventKind::Fault, {4, 4}}), SubmitStatus::Accepted);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.push({EventKind::Fault, {5, 5}}), SubmitStatus::Closed);

  auto batch = q.wait_drain(8);  // does not block: events are queued
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].node, (mesh::Coord{4, 4}));
  // Closed and fully drained: the consumer's shutdown signal.
  EXPECT_TRUE(q.wait_drain(8).empty());
}

TEST(EventQueueTest, CloseWhileFullKeepsEveryQueuedEventDrainable) {
  // Closing at capacity must not lose events, and post-close verdicts are
  // Closed (not Overloaded) — the submitter learns shutdown, not pressure.
  EventQueue q(2);
  ASSERT_EQ(q.push({EventKind::Fault, {0, 0}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {1, 0}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {2, 0}}), SubmitStatus::Overloaded);
  q.close();
  EXPECT_EQ(q.push({EventKind::Fault, {3, 0}}), SubmitStatus::Closed);
  EXPECT_EQ(q.depth(), 2u);

  auto batch = q.wait_drain(8);  // must not block: closed with events queued
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].node, (mesh::Coord{0, 0}));
  EXPECT_EQ(batch[1].node, (mesh::Coord{1, 0}));
  EXPECT_TRUE(q.wait_drain(8).empty());  // the shutdown signal
}

TEST(EventQueueTest, ConcurrentSubmitVersusCloseNeverLosesAcceptedEvents) {
  // Race many producers against a mid-stream close (tsan-able): every push
  // gets a typed verdict, and exactly the accepted events — no more, no
  // fewer — come out of the drain.
  EventQueue q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<int> accepted{0};
  std::atomic<int> closed{0};
  std::atomic<int> overloaded{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  std::thread consumer([&q] {
    // Keep the queue from saturating while racing the close.
    for (;;) {
      const auto batch = q.wait_drain(16);
      if (batch.empty()) return;  // closed and fully drained
    }
  });
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&q, &accepted, &closed, &overloaded, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        switch (q.push({EventKind::Fault, {t, i % 16}})) {
          case SubmitStatus::Accepted: accepted.fetch_add(1); break;
          case SubmitStatus::Closed: closed.fetch_add(1); break;
          case SubmitStatus::Overloaded: overloaded.fetch_add(1); break;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.close();
  for (auto& producer : producers) producer.join();
  consumer.join();

  EXPECT_EQ(accepted.load() + closed.load() + overloaded.load(),
            kProducers * kPerProducer);
  // The consumer drained to empty before exiting, so the queue's own
  // accounting must balance: accepted == accepted() and nothing remains.
  EXPECT_EQ(q.accepted(), static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(q.depth(), 0u);
  // Post-close pushes all reported Closed (some producers likely raced the
  // close; either way the sum above already proves no verdict was lost).
  EXPECT_EQ(q.push({EventKind::Fault, {9, 9}}), SubmitStatus::Closed);
}

TEST(EventQueueTest, RequeueFrontPreservesFifoAndBypassesCapacityAndClose) {
  EventQueue q(2);
  ASSERT_EQ(q.push({EventKind::Fault, {1, 1}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {2, 2}}), SubmitStatus::Accepted);
  // Crash recovery puts replayed events at the head, even over capacity.
  q.requeue_front({{EventKind::Repair, {8, 8}}, {EventKind::Fault, {9, 9}}});
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.accepted(), 2u);  // requeues are not new admissions

  auto batch = q.try_drain(8);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0], (FaultEvent{EventKind::Repair, {8, 8}}));
  EXPECT_EQ(batch[1], (FaultEvent{EventKind::Fault, {9, 9}}));
  EXPECT_EQ(batch[2], (FaultEvent{EventKind::Fault, {1, 1}}));
  EXPECT_EQ(batch[3], (FaultEvent{EventKind::Fault, {2, 2}}));

  // A closed queue still owes accepted (here: requeued) events a drain.
  q.close();
  q.requeue_front({{EventKind::Fault, {5, 5}}});
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.wait_drain(8).size(), 1u);
}

TEST(EventQueueTest, ChaosPlanForcesTypedDenialsWithSeparateAccounting) {
  chaos::FaultPlan plan({.deny_submit = 1.0, .max_denies = 2});
  EventQueue q(8, chaos::ChaosConfig{&plan});
  EXPECT_EQ(q.push({EventKind::Fault, {0, 0}}), SubmitStatus::Overloaded);
  EXPECT_EQ(q.push({EventKind::Fault, {0, 0}}), SubmitStatus::Overloaded);
  EXPECT_EQ(q.push({EventKind::Fault, {0, 0}}), SubmitStatus::Accepted);
  EXPECT_EQ(q.chaos_denied(), 2u);
  EXPECT_EQ(q.rejected(), 2u);  // chaos denials count as rejections too
  EXPECT_EQ(q.accepted(), 1u);
  EXPECT_EQ(q.depth(), 1u);  // denied events were never enqueued
}

TEST(EventQueueTest, WaitDrainBlocksUntilProducerArrives) {
  EventQueue q(8);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(q.push({EventKind::Repair, {7, 7}}), SubmitStatus::Accepted);
  });
  const auto batch = q.wait_drain(8);
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, EventKind::Repair);
}

}  // namespace
}  // namespace ocp::svc
