#include "svc/event_queue.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ocp::svc {
namespace {

TEST(EventQueueTest, DrainsInFifoOrder) {
  EventQueue q(8);
  ASSERT_EQ(q.push({EventKind::Fault, {1, 1}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Repair, {2, 2}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {3, 3}}), SubmitStatus::Accepted);
  EXPECT_EQ(q.depth(), 3u);

  const auto batch = q.try_drain(16);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (FaultEvent{EventKind::Fault, {1, 1}}));
  EXPECT_EQ(batch[1], (FaultEvent{EventKind::Repair, {2, 2}}));
  EXPECT_EQ(batch[2], (FaultEvent{EventKind::Fault, {3, 3}}));
  EXPECT_EQ(q.depth(), 0u);
}

TEST(EventQueueTest, MaxBatchBoundsEachDrain) {
  EventQueue q(16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.push({EventKind::Fault, {i, 0}}), SubmitStatus::Accepted);
  }
  EXPECT_EQ(q.try_drain(2).size(), 2u);
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.try_drain(2).size(), 2u);
  EXPECT_EQ(q.try_drain(2).size(), 1u);
  EXPECT_TRUE(q.try_drain(2).empty());
}

TEST(EventQueueTest, FullQueueRejectsWithOverloaded) {
  EventQueue q(2);
  ASSERT_EQ(q.push({EventKind::Fault, {0, 0}}), SubmitStatus::Accepted);
  ASSERT_EQ(q.push({EventKind::Fault, {1, 0}}), SubmitStatus::Accepted);
  EXPECT_EQ(q.push({EventKind::Fault, {2, 0}}), SubmitStatus::Overloaded);
  EXPECT_EQ(q.depth(), 2u);  // the rejected event was not enqueued
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.rejected(), 1u);

  // Draining frees capacity; admission recovers.
  (void)q.try_drain(1);
  EXPECT_EQ(q.push({EventKind::Fault, {2, 0}}), SubmitStatus::Accepted);
}

TEST(EventQueueTest, CloseStopsAdmissionButKeepsQueuedEventsDrainable) {
  EventQueue q(8);
  ASSERT_EQ(q.push({EventKind::Fault, {4, 4}}), SubmitStatus::Accepted);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.push({EventKind::Fault, {5, 5}}), SubmitStatus::Closed);

  auto batch = q.wait_drain(8);  // does not block: events are queued
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].node, (mesh::Coord{4, 4}));
  // Closed and fully drained: the consumer's shutdown signal.
  EXPECT_TRUE(q.wait_drain(8).empty());
}

TEST(EventQueueTest, WaitDrainBlocksUntilProducerArrives) {
  EventQueue q(8);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(q.push({EventKind::Repair, {7, 7}}), SubmitStatus::Accepted);
  });
  const auto batch = q.wait_drain(8);
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, EventKind::Repair);
}

}  // namespace
}  // namespace ocp::svc
