#include "svc/snapshot.hpp"

#include <gtest/gtest.h>

#include "core/regions.hpp"
#include "fault/generators.hpp"

namespace ocp::svc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(SnapshotTest, StatusOfMatchesLabelingForEveryNode) {
  const Mesh2D m(16, 16);
  stats::Rng rng(7);
  const auto faults = fault::uniform_random(m, 18, rng);
  const labeling::MaintainedLabeling live(faults);
  const auto snap = Snapshot::build(3, live);

  EXPECT_EQ(snap->epoch(), 3u);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    const Coord c = m.coord(i);
    const NodeStatus got = snap->status_of(c);
    if (faults.contains(c)) {
      EXPECT_EQ(got, NodeStatus::Faulty);
    } else if (live.activation()[c] == labeling::Activation::Disabled) {
      EXPECT_EQ(got, NodeStatus::Disabled);
    } else {
      EXPECT_EQ(got, NodeStatus::Enabled);
    }
  }
  EXPECT_EQ(snap->blocked(), labeling::disabled_cells(live.activation()));
}

TEST(SnapshotTest, RegionIndexAgreesWithRegionList) {
  const Mesh2D m(16, 16);
  stats::Rng rng(11);
  const auto faults = fault::uniform_random(m, 20, rng);
  const labeling::MaintainedLabeling live(faults);
  const auto snap = Snapshot::build(0, live);

  // Every region cell maps back to its own region id; every enabled node
  // maps to -1.
  for (std::size_t r = 0; r < snap->regions().size(); ++r) {
    for (const Coord c : snap->regions()[r].component.cells()) {
      ASSERT_EQ(snap->region_id_of(c), static_cast<std::int32_t>(r));
      ASSERT_EQ(snap->region_of(c), &snap->regions()[r]);
    }
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    const Coord c = m.coord(i);
    if (snap->status_of(c) == NodeStatus::Enabled) {
      ASSERT_EQ(snap->region_id_of(c), -1);
      ASSERT_EQ(snap->region_of(c), nullptr);
    }
  }
}

TEST(SnapshotTest, RoutesAreMemoizedAndStable) {
  const Mesh2D m(12, 12);
  const labeling::MaintainedLabeling live(grid::CellSet{m, {{5, 5}, {6, 5}}});
  const auto snap = Snapshot::build(0, live);

  const routing::Route& first = snap->route({0, 0}, {11, 11});
  EXPECT_TRUE(first.delivered());
  // The per-epoch cache is never cleared, so the reference is stable.
  EXPECT_EQ(&snap->route({0, 0}, {11, 11}), &first);
  EXPECT_EQ(snap->route_cache().hits(), 1u);
  EXPECT_EQ(snap->route_cache().misses(), 1u);
}

TEST(SnapshotTest, ValidatePassesOnWellFormedLabeling) {
  const Mesh2D m(16, 16);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 16, rng);
  const labeling::MaintainedLabeling live(faults);
  const auto snap = Snapshot::build(0, live);
  const auto report = snap->validate(labeling::SafeUnsafeDef::Def2b);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SnapshotTest, ValidateRejectsInconsistentLabeling) {
  // Assemble a deliberately broken snapshot through the raw constructor: a
  // faulty node whose safety plane claims Safe and whose activation plane
  // claims Enabled, with no blocks or regions extracted. This is exactly
  // the kind of engine bug the publish gate exists to catch.
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 3}}};
  const grid::NodeGrid<labeling::Safety> safety(m, labeling::Safety::Safe);
  const grid::NodeGrid<labeling::Activation> activation(
      m, labeling::Activation::Enabled);
  const Snapshot broken(5, faults, safety, activation, {}, {},
                        routing::Hand::Right);
  const auto report = broken.validate(labeling::SafeUnsafeDef::Def2b);
  EXPECT_FALSE(report.ok());
}

TEST(SnapshotTest, LabelDigestIsEpochIndependentAndLabelSensitive) {
  const Mesh2D m(12, 12);
  stats::Rng rng(5);
  const auto faults = fault::uniform_random(m, 10, rng);
  labeling::MaintainedLabeling live(faults);

  const auto a = Snapshot::build(1, live);
  const auto b = Snapshot::build(99, live);
  EXPECT_EQ(a->label_digest(), b->label_digest());

  // Any labeling change must move the digest.
  grid::CellSet more = faults;
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    if (!more.contains(m.coord(i))) {
      more.insert(m.coord(i));
      break;
    }
  }
  const labeling::MaintainedLabeling other(more);
  EXPECT_NE(a->label_digest(), Snapshot::build(1, other)->label_digest());
}

}  // namespace
}  // namespace ocp::svc
