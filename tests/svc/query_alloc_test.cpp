// Allocation-freedom of the point-query hot paths.
//
// `query_status` / `query_region` answer from the RCU snapshot through the
// thread-local epoch handle: with tracing disabled (the benched
// configuration) a warmed-up query performs no heap allocation at all — no
// shared_ptr copies, no counter-map strings, no route materialization. The
// suite pins that by interposing the global allocator and counting
// this-thread allocations around the calls; a regression that sneaks an
// allocation into the hot path (a string key, an accidental vector, a
// snapshot copy) fails here before it shows up as a bench delta.
//
// The interposed operators serve the entire test binary, so they stay
// trivial: forward to malloc/free and bump a thread-local counter.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "svc/service.hpp"
#include "svc/sharded_service.hpp"

namespace {
thread_local std::uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ocp::svc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

template <typename Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before = g_allocations;
  fn();
  return g_allocations - before;
}

TEST(QueryAllocTest, ServicePointQueriesAreAllocationFree) {
  Service service(grid::CellSet(Mesh2D(32, 32)));
  ASSERT_EQ(service.submit({EventKind::Fault, {10, 10}}),
            SubmitStatus::Accepted);
  service.flush();

  // Warm-up: the first acquire on this thread populates the thread-local
  // epoch slot (and any lazy internals) once.
  (void)service.query_status({10, 10});
  (void)service.query_region({10, 10});

  // No gtest macros inside the counted window (their internals may touch
  // the heap); verify results after.
  bool all_ok = true;
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i) {
                const StatusAnswer a = service.query_status({10, 10});
                all_ok = all_ok && a.status == QueryStatus::Ok &&
                         a.node == NodeStatus::Faulty;
                const RegionAnswer r = service.query_region({11, 10});
                all_ok = all_ok && r.status == QueryStatus::Ok;
              }
            }),
            0u);
  EXPECT_TRUE(all_ok);
}

TEST(QueryAllocTest, ShardedPointQueriesAreAllocationFree) {
  ShardedService service(grid::CellSet(Mesh2D(32, 32)),
                         {.shard_rows = 2, .shard_cols = 2});
  ASSERT_EQ(service.submit({EventKind::Fault, {20, 20}}),
            SubmitStatus::Accepted);
  service.flush();

  // Warm every shard's thread-local slot (queries fan out by coordinate).
  const Coord probes[] = {{4, 4}, {20, 4}, {4, 20}, {20, 20}};
  for (const Coord c : probes) {
    (void)service.query_status(c);
    (void)service.query_region(c);
  }

  bool all_ok = true;
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 1000; ++i) {
                for (const Coord c : probes) {
                  const StatusAnswer a = service.query_status(c);
                  all_ok = all_ok && a.status == QueryStatus::Ok;
                  const RegionAnswer r = service.query_region(c);
                  all_ok = all_ok && r.status == QueryStatus::Ok;
                }
              }
            }),
            0u);
  EXPECT_TRUE(all_ok);
}

TEST(QueryAllocTest, EpochTurnoverCostsAtMostTheSlowPath) {
  // A publish between queries forces the acquire slow path once; the
  // steady state right after must be allocation-free again.
  Service service(grid::CellSet(Mesh2D(32, 32)));
  (void)service.query_status({1, 1});
  ASSERT_EQ(service.submit({EventKind::Fault, {15, 15}}),
            SubmitStatus::Accepted);
  service.flush();
  (void)service.query_status({1, 1});  // slow path: adopt the new epoch
  EXPECT_EQ(allocations_during([&] {
              for (int i = 0; i < 100; ++i) {
                (void)service.query_status({15, 15});
              }
            }),
            0u);
}

}  // namespace
}  // namespace ocp::svc
