// Coalescing and epoch semantics of the single-writer ingest engine. The
// edge cases here — duplicate faults, repairs of never-faulty nodes,
// fault+repair of the same node inside one drain batch — must collapse to
// no-ops or single-epoch publications, never panics or spurious epochs.
#include "svc/ingest.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "svc/loadgen.hpp"

namespace ocp::svc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

grid::CellSet empty16() { return grid::CellSet(Mesh2D(16, 16)); }

TEST(IngestTest, ConstructorPublishesEpochZero) {
  const Mesh2D m(16, 16);
  IngestEngine engine(grid::CellSet{m, {{4, 4}}});
  const auto snap = engine.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 0u);
  EXPECT_TRUE(snap->faults().contains({4, 4}));
}

TEST(IngestTest, SingleFaultPublishesOneEpoch) {
  IngestEngine engine(empty16());
  const FaultEvent events[] = {{EventKind::Fault, {5, 5}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 1u);
  EXPECT_EQ(outcome.coalesced, 0u);
  EXPECT_TRUE(outcome.published);
  EXPECT_EQ(outcome.epoch, 1u);
  EXPECT_EQ(engine.snapshot()->epoch(), 1u);
  EXPECT_TRUE(engine.snapshot()->faults().contains({5, 5}));
}

TEST(IngestTest, DuplicateFaultEventsInOneBatchCoalesceToOneApply) {
  IngestEngine engine(empty16());
  const FaultEvent events[] = {{EventKind::Fault, {5, 5}},
                               {EventKind::Fault, {5, 5}},
                               {EventKind::Fault, {5, 5}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 1u);
  EXPECT_EQ(outcome.coalesced, 2u);
  EXPECT_TRUE(outcome.published);
  EXPECT_EQ(engine.snapshot()->epoch(), 1u);
}

TEST(IngestTest, FaultOfAlreadyFaultyNodeIsNoOpWithNoEpoch) {
  const Mesh2D m(16, 16);
  IngestEngine engine(grid::CellSet{m, {{5, 5}}});
  const FaultEvent events[] = {{EventKind::Fault, {5, 5}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_EQ(outcome.coalesced, 1u);
  EXPECT_FALSE(outcome.published);
  EXPECT_EQ(engine.snapshot()->epoch(), 0u);
}

TEST(IngestTest, RepairOfNeverFaultyNodeIsNoOp) {
  IngestEngine engine(empty16());
  const FaultEvent events[] = {{EventKind::Repair, {8, 8}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_EQ(outcome.coalesced, 1u);
  EXPECT_FALSE(outcome.published);
  EXPECT_TRUE(engine.snapshot()->faults().empty());
}

TEST(IngestTest, FaultThenRepairOfSameNodeInOneBatchCancels) {
  IngestEngine engine(empty16());
  const FaultEvent events[] = {{EventKind::Fault, {5, 5}},
                               {EventKind::Repair, {5, 5}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_EQ(outcome.coalesced, 2u);
  EXPECT_FALSE(outcome.published);
  EXPECT_EQ(engine.snapshot()->epoch(), 0u);
  EXPECT_TRUE(engine.snapshot()->faults().empty());
}

TEST(IngestTest, RepairThenFaultOfFaultyNodeInOneBatchCancels) {
  const Mesh2D m(16, 16);
  IngestEngine engine(grid::CellSet{m, {{5, 5}}});
  const FaultEvent events[] = {{EventKind::Repair, {5, 5}},
                               {EventKind::Fault, {5, 5}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_FALSE(outcome.published);
  EXPECT_TRUE(engine.snapshot()->faults().contains({5, 5}));
}

TEST(IngestTest, OutOfMachineEventsAreCountedInvalidNeverFatal) {
  IngestEngine engine(empty16());
  const FaultEvent events[] = {{EventKind::Fault, {-1, 3}},
                               {EventKind::Repair, {99, 99}},
                               {EventKind::Fault, {2, 2}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.invalid, 2u);
  EXPECT_EQ(outcome.applied, 1u);
  EXPECT_EQ(outcome.coalesced, 2u);  // invalid events also never apply
  EXPECT_TRUE(outcome.published);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.events, 3u);
}

TEST(IngestTest, MixedBatchPublishesExactlyOneEpoch) {
  const Mesh2D m(16, 16);
  IngestEngine engine(grid::CellSet{m, {{1, 1}}});
  const FaultEvent events[] = {
      {EventKind::Fault, {5, 5}},   {EventKind::Repair, {1, 1}},
      {EventKind::Fault, {5, 5}},   {EventKind::Fault, {10, 10}},
      {EventKind::Repair, {12, 3}},  // never faulty
  };
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_EQ(outcome.applied, 3u);  // +{5,5}, -{1,1}, +{10,10}
  EXPECT_TRUE(outcome.published);
  EXPECT_EQ(engine.snapshot()->epoch(), 1u);
  EXPECT_EQ(engine.snapshot()->faults().size(), 2u);
}

TEST(IngestTest, BatchedReplayMatchesFromScratchPipeline) {
  const Mesh2D m(20, 20);
  stats::Rng rng(17);
  const auto initial = fault::uniform_random(m, 8, rng);
  const auto stream = generate_event_stream(m, initial, 120, 0.4, 23);

  IngestEngine engine(initial);
  // Apply in uneven batches to exercise the coalescer.
  std::size_t at = 0;
  std::size_t batch = 1;
  while (at < stream.size()) {
    const std::size_t n = std::min(batch, stream.size() - at);
    (void)engine.apply(std::span(stream).subspan(at, n));
    at += n;
    batch = batch % 7 + 2;
  }

  // The maintained labeling must equal a from-scratch pipeline run over the
  // final fault set, bit for bit.
  const auto& final_faults = engine.snapshot()->faults();
  const labeling::MaintainedLabeling scratch(final_faults);
  EXPECT_EQ(engine.snapshot()->label_digest(),
            Snapshot::build(0, scratch)->label_digest());
  EXPECT_EQ(engine.snapshot()->safety(), scratch.safety());
  EXPECT_EQ(engine.snapshot()->activation(), scratch.activation());
}

TEST(IngestTest, OracleGatePassesCleanPublications) {
  IngestEngine engine(empty16(), {.validate = true});
  const FaultEvent events[] = {{EventKind::Fault, {5, 5}},
                               {EventKind::Fault, {6, 6}}};
  const BatchOutcome outcome = engine.apply(events);
  EXPECT_TRUE(outcome.published);
  EXPECT_EQ(engine.stats().oracle_rejects, 0u);
  EXPECT_FALSE(engine.last_violation().has_value());
}

TEST(IngestTest, StatsAccumulateAcrossBatches) {
  IngestEngine engine(empty16());
  const FaultEvent a[] = {{EventKind::Fault, {1, 1}}};
  const FaultEvent b[] = {{EventKind::Fault, {1, 1}},
                          {EventKind::Fault, {2, 2}}};
  (void)engine.apply(a);
  (void)engine.apply(b);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.events, 3u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.epochs_published, 2u);
}

}  // namespace
}  // namespace ocp::svc
