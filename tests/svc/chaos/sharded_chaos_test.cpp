// Chaos against the sharded runtime: per-shard kills mid-gossip, restart
// replay, and the sharded schedule explorer.
//
// The scenario the single-writer chaos suite cannot express: one shard's
// worker dies at its next publish while a neighbor is still draining the
// halo deltas the victim emitted moments earlier. The victim's engine
// crash-recovers to its last published snapshot, the un-covered backlog —
// external events AND halo-derived synthetic events — is requeued, and
// after `restart_shard` the replay (version-gated against everything the
// fleet learned meanwhile) must converge the composite digest back to the
// single-writer labeling of the net fault set.

#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/schedule.hpp"
#include "svc/loadgen.hpp"
#include "svc/sharded_service.hpp"

namespace ocp::chaos {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

std::vector<svc::FaultEvent> fault_rect(std::int32_t x0, std::int32_t x1,
                                        std::int32_t y0, std::int32_t y1) {
  std::vector<svc::FaultEvent> events;
  for (std::int32_t y = y0; y <= y1; ++y) {
    for (std::int32_t x = x0; x <= x1; ++x) {
      events.push_back({svc::EventKind::Fault, {x, y}});
    }
  }
  return events;
}

std::uint64_t single_writer_digest(const grid::CellSet& initial,
                                   std::span<const svc::FaultEvent> stream) {
  svc::IngestEngine engine(initial, {});
  (void)engine.apply(stream);
  return engine.snapshot()->label_digest();
}

TEST(ShardedChaosTest, KilledShardReplaysToSingleWriterDigest) {
  const Mesh2D m(32, 32);
  const grid::CellSet initial(m);
  // Kill shard 0 at its second publish while a seam-spanning block drives
  // halo traffic between shards 0 and 1.
  FaultPlan plan(PlanSpec{.seed = 7, .kill_at_stamps = {2}});
  svc::ShardedServiceConfig config{.shard_rows = 1, .shard_cols = 2};
  // Small batches: shard 0's eight external events need at least two
  // publishes, so the kill at stamp 2 fires deterministically.
  config.max_batch = 4;
  config.shard_chaos = {ChaosConfig{&plan}, ChaosConfig{}};
  svc::ShardedService service(initial, config);

  const auto events = fault_rect(14, 17, 5, 8);
  for (const svc::FaultEvent& e : events) {
    ASSERT_EQ(service.submit(e), svc::SubmitStatus::Accepted);
  }
  // Flush returns (instead of hanging) once the victim is down; its backlog
  // — including halo-derived events whose deltas were already consumed by
  // the version gate — is requeued, and the neighbor keeps serving.
  service.flush();
  ASSERT_TRUE(service.shard_crashed(0));
  EXPECT_EQ(service.query_status({20, 6}).status, svc::QueryStatus::Ok);

  plan.disarm();
  ASSERT_TRUE(service.restart_shard(0));
  service.flush();
  ASSERT_FALSE(service.any_shard_crashed());
  EXPECT_EQ(service.composite_digest(), single_writer_digest(initial, events));
  EXPECT_EQ(plan.stats().kills, 1u);
}

TEST(ShardedChaosTest, KillWhileNeighborDrainsHaloDeltas) {
  // The targeted interleaving: the victim emits deltas (publish 1), dies on
  // its next publish, and the neighbor's drain of those deltas emits
  // *reply* deltas the dead victim cannot consume until restarted. Repair
  // events in the second wave make the replay order matter.
  const Mesh2D m(32, 32);
  const grid::CellSet initial(m);
  FaultPlan plan(PlanSpec{.seed = 3, .kill_at_stamps = {2, 3}});
  svc::ShardedServiceConfig config{.shard_rows = 1, .shard_cols = 2};
  config.max_batch = 4;  // many small publishes: more kill windows
  config.shard_chaos = {ChaosConfig{&plan}, ChaosConfig{}};
  svc::ShardedService service(initial, config);

  auto events = fault_rect(14, 17, 5, 8);
  const auto repairs = fault_rect(15, 16, 6, 7);
  for (const auto& r : repairs) {
    events.push_back({svc::EventKind::Repair, r.node});
  }
  for (const svc::FaultEvent& e : events) {
    ASSERT_EQ(service.submit(e), svc::SubmitStatus::Accepted);
  }
  // The first kill fires before the fleet can quiesce: shard 0 holds ten
  // external events and max_batch is 4, so publish stamp 2 is unavoidable.
  service.flush();
  EXPECT_TRUE(service.shard_crashed(0));
  // Both armed kills (stamps 2 and 3) are consumed across the restart
  // cycles; the loop converges once the plan has nothing left to fire.
  for (int i = 0; i < 8; ++i) {
    for (std::uint32_t s = 0; s < service.shard_grid().count(); ++s) {
      (void)service.restart_shard(s);
    }
    service.flush();
    if (!service.any_shard_crashed()) break;
  }
  ASSERT_FALSE(service.any_shard_crashed());
  EXPECT_EQ(service.composite_digest(), single_writer_digest(initial, events));
  EXPECT_EQ(plan.stats().kills, 2u);
}

TEST(ShardedScheduleTest, GeneratorIsSeededAndTargetsShards) {
  const auto a = generate_sharded_schedule(42, 64, 4);
  const auto b = generate_sharded_schedule(42, 64, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, generate_sharded_schedule(43, 64, 4));
  ASSERT_EQ(a.size(), 64u);
  const auto has = [&a](ShardedOpKind kind) {
    return std::any_of(a.begin(), a.end(),
                       [kind](const ShardedOp& op) { return op.kind == kind; });
  };
  EXPECT_TRUE(has(ShardedOpKind::Submit));
  EXPECT_TRUE(has(ShardedOpKind::Query));
  EXPECT_TRUE(has(ShardedOpKind::KillShard));
  for (const ShardedOp& op : a) EXPECT_LT(op.shard, 4);
}

TEST(ShardedScheduleTest, CleanScheduleHoldsAllInvariants) {
  ShardedScheduleConfig config;
  config.seed = 5;
  config.service.shard_rows = 2;
  config.service.shard_cols = 2;
  // No kill ops: a hand-written schedule of submits, queries and flushes.
  const std::vector<ShardedOp> schedule = {
      {ShardedOpKind::Submit, 24, 0}, {ShardedOpKind::Query, 16, 0},
      {ShardedOpKind::Flush, 0, 0},   {ShardedOpKind::Submit, 40, 0},
      {ShardedOpKind::Query, 16, 0},  {ShardedOpKind::Flush, 0, 0},
  };
  const ShardedScheduleResult result = run_sharded_schedule(config, schedule);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front());
  EXPECT_EQ(result.final_digest, result.expected_digest);
  EXPECT_EQ(result.kills, 0u);
  EXPECT_GT(result.queries_ok, 0u);
}

TEST(ShardedScheduleTest, KillScheduleConvergesAfterQuiesce) {
  ShardedScheduleConfig config;
  config.seed = 9;
  config.events = 128;
  config.service.shard_rows = 2;
  config.service.shard_cols = 2;
  // Kill every shard once mid-run, with bursts driving gossip across the
  // seams in between; the quiesce phase restarts and replays.
  const std::vector<ShardedOp> schedule = {
      {ShardedOpKind::Submit, 16, 0},    {ShardedOpKind::KillShard, 16, 0},
      {ShardedOpKind::Query, 8, 0},      {ShardedOpKind::KillShard, 16, 3},
      {ShardedOpKind::RestartShard, 0, 0}, {ShardedOpKind::Submit, 16, 0},
      {ShardedOpKind::KillShard, 16, 1}, {ShardedOpKind::Query, 8, 0},
      {ShardedOpKind::KillShard, 16, 2}, {ShardedOpKind::Flush, 0, 0},
  };
  const ShardedScheduleResult result = run_sharded_schedule(config, schedule);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front());
  EXPECT_EQ(result.final_digest, result.expected_digest);
}

TEST(ShardedScheduleTest, SeededExplorationSweepPasses) {
  // The explorer proper: seeded random schedules (kills included) against a
  // 2x2 fleet; every run must quiesce to the expected composite digest.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ShardedScheduleConfig config;
    config.seed = seed;
    config.events = 96;
    config.service.shard_rows = 2;
    config.service.shard_cols = 2;
    const auto schedule = generate_sharded_schedule(seed * 31 + 7, 24, 4);
    const ShardedScheduleResult result = run_sharded_schedule(config, schedule);
    EXPECT_TRUE(result.ok())
        << "seed " << seed << ": "
        << (result.violations.empty() ? "" : result.violations.front());
  }
}

}  // namespace
}  // namespace ocp::chaos
