// FaultPlan decision streams: counter-hashed determinism, caps, disarm,
// one-shot kills — plus the seeded backoff policy the submitters pair with
// chaos denials (pure in (policy, attempt), so tests can pin exact delays).
#include "chaos/plan.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "svc/backoff.hpp"

namespace ocp::chaos {
namespace {

TEST(ChaosPlanTest, DecisionStreamsAreDeterministicInSeed) {
  const PlanSpec spec{.seed = 7, .deny_submit = 0.5, .poison_publish = 0.3};
  FaultPlan a(spec);
  FaultPlan b(spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.deny_submit(), b.deny_submit()) << "deny diverged at " << i;
    EXPECT_EQ(a.poison_publish(), b.poison_publish())
        << "poison diverged at " << i;
  }
  // A different seed yields a different stream (overwhelmingly likely over
  // 200 draws at p=0.5).
  FaultPlan c({.seed = 8, .deny_submit = 0.5});
  int diverged = 0;
  FaultPlan a2(spec);
  for (int i = 0; i < 200; ++i) {
    if (a2.deny_submit() != c.deny_submit()) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(ChaosPlanTest, CapsBoundTotalInjectionsEvenAtProbabilityOne) {
  FaultPlan plan({.deny_submit = 1.0, .max_denies = 3});
  int denied = 0;
  for (int i = 0; i < 50; ++i) {
    if (plan.deny_submit()) ++denied;
  }
  EXPECT_EQ(denied, 3);
  EXPECT_EQ(plan.stats().denies, 3u);
}

TEST(ChaosPlanTest, CapsHoldUnderConcurrentCallers) {
  FaultPlan plan({.deny_submit = 1.0, .max_denies = 16});
  std::atomic<int> denied{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&plan, &denied] {
      for (int i = 0; i < 100; ++i) {
        if (plan.deny_submit()) denied.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(denied.load(), 16);
  EXPECT_EQ(plan.stats().denies, 16u);
}

TEST(ChaosPlanTest, DisarmSilencesEveryPointAndRearmRestores) {
  FaultPlan plan({.deny_submit = 1.0,
                  .duplicate_batch = 1.0,
                  .poison_publish = 1.0,
                  .kill_at_stamps = {1}});
  plan.disarm();
  EXPECT_FALSE(plan.armed());
  EXPECT_FALSE(plan.deny_submit());
  EXPECT_FALSE(plan.on_batch().duplicate);
  EXPECT_FALSE(plan.poison_publish());
  EXPECT_FALSE(plan.kill_now(1));  // the stamp survives disarm...
  plan.rearm();
  EXPECT_TRUE(plan.deny_submit());
  EXPECT_TRUE(plan.kill_now(1));  // ...and fires once rearmed.
}

TEST(ChaosPlanTest, KillStampsFireExactlyOnceEach) {
  FaultPlan plan({.kill_at_stamps = {3, 5}});
  EXPECT_FALSE(plan.kill_now(1));
  EXPECT_FALSE(plan.kill_now(2));
  EXPECT_TRUE(plan.kill_now(3));
  EXPECT_FALSE(plan.kill_now(3));  // consumed: the replayed batch publishes
  EXPECT_TRUE(plan.kill_now(5));
  EXPECT_FALSE(plan.kill_now(5));
  EXPECT_EQ(plan.stats().kills, 2u);
}

TEST(ChaosPlanTest, StallDurationsStayWithinSpecBounds) {
  FaultPlan plan({.stall_batch = 1.0, .stall_max_us = 50});
  for (int i = 0; i < 100; ++i) {
    const BatchDecision decision = plan.on_batch();
    ASSERT_GE(decision.stall_us, 1u);
    ASSERT_LE(decision.stall_us, 50u);
  }
}

TEST(ChaosPlanTest, NullConfigIsDisabledAndInert) {
  const ChaosConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_FALSE(config.deny_submit());
  EXPECT_FALSE(config.on_batch().duplicate);
  EXPECT_FALSE(config.poison_publish());
  EXPECT_FALSE(config.kill_now(1));
}

TEST(BackoffTest, DelaysAreAPureFunctionOfPolicyAndAttempt) {
  const svc::BackoffPolicy policy{.base_us = 2, .cap_us = 64, .seed = 9};
  for (std::uint64_t attempt = 0; attempt < 20; ++attempt) {
    EXPECT_EQ(svc::backoff_delay_us(policy, attempt),
              svc::backoff_delay_us(policy, attempt));
  }
}

TEST(BackoffTest, RampIsExponentialToTheCapWithoutJitter) {
  const svc::BackoffPolicy policy{.base_us = 2, .cap_us = 64, .jitter = 0.0};
  EXPECT_EQ(svc::backoff_delay_us(policy, 0), 2u);
  EXPECT_EQ(svc::backoff_delay_us(policy, 1), 4u);
  EXPECT_EQ(svc::backoff_delay_us(policy, 2), 8u);
  EXPECT_EQ(svc::backoff_delay_us(policy, 4), 32u);
  EXPECT_EQ(svc::backoff_delay_us(policy, 5), 64u);
  EXPECT_EQ(svc::backoff_delay_us(policy, 6), 64u);   // saturated
  EXPECT_EQ(svc::backoff_delay_us(policy, 63), 64u);  // shift-safe far out
}

TEST(BackoffTest, JitterStaysWithinTheStepAndNeverHitsZero) {
  const svc::BackoffPolicy policy{
      .base_us = 2, .cap_us = 256, .jitter = 0.5, .seed = 11};
  for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
    const std::uint32_t step = svc::backoff_delay_us(
        {.base_us = 2, .cap_us = 256, .jitter = 0.0}, attempt);
    const std::uint32_t delay = svc::backoff_delay_us(policy, attempt);
    ASSERT_GE(delay, 1u);
    ASSERT_LE(delay, step);
    ASSERT_GE(delay, step / 2);  // jitter 0.5 removes at most half the step
  }
}

TEST(BackoffTest, ZeroBaseDisablesSleepingEntirely) {
  const svc::BackoffPolicy policy{.base_us = 0};
  EXPECT_EQ(svc::backoff_delay_us(policy, 0), 0u);
  EXPECT_EQ(svc::backoff_delay_us(policy, 10), 0u);
}

}  // namespace
}  // namespace ocp::chaos
