// Degraded-mode guarantees of the serving runtime under injected failures:
// typed retries with pinned counts, bounded staleness under withheld
// publications, timeout (never hang) on waits for epochs that cannot
// arrive, and — the acceptance invariant — kill/restart of the ingest
// thread mid-batch converging to a snapshot bit-identical to an
// uninterrupted run over the same net fault set, at 1, 2, and 8 query
// threads.
#include <gtest/gtest.h>

#include <chrono>

#include "chaos/harness.hpp"
#include "chaos/plan.hpp"
#include "fault/generators.hpp"
#include "svc/loadgen.hpp"

namespace ocp::chaos {
namespace {

using namespace std::chrono_literals;
using mesh::Coord;
using mesh::Mesh2D;

grid::CellSet empty16() { return grid::CellSet(Mesh2D(16, 16)); }

svc::ServiceConfig with_plan(FaultPlan& plan) {
  svc::ServiceConfig config;
  config.ingest.chaos.plan = &plan;
  return config;
}

TEST(ChaosServiceTest, DenialStormYieldsExactlyTheSpeccedRetryCount) {
  FaultPlan plan({.deny_submit = 1.0, .max_denies = 3});
  svc::Service service(empty16(), with_plan(plan));

  int retries = 0;
  svc::SubmitStatus status;
  while ((status = service.submit({svc::EventKind::Fault, {4, 4}})) !=
         svc::SubmitStatus::Accepted) {
    ASSERT_EQ(status, svc::SubmitStatus::Overloaded);  // typed, not a hang
    ++retries;
    ASSERT_LE(retries, 10);
  }
  // Counter-hashed decisions at probability 1.0 with a cap of 3: the retry
  // count is pinned, not merely bounded.
  EXPECT_EQ(retries, 3);
  service.flush();
  EXPECT_EQ(service.stats().chaos_denied, 3u);
  EXPECT_EQ(service.query_status({4, 4}).node, svc::NodeStatus::Faulty);
}

TEST(ChaosServiceTest, LoadgenBackoffRetriesArePinnedUnderChaosDenials) {
  FaultPlan plan({.deny_submit = 1.0, .max_denies = 5});
  svc::SvcLoadConfig config;
  config.mesh_side = 16;
  config.events = 32;
  config.query_threads = 1;
  config.queries_per_thread = 50;
  config.service.ingest.chaos.plan = &plan;

  const svc::SvcLoadResult result = svc::run_svc_load(config);
  // The writer is the only submitter, every denial costs exactly one retry,
  // and the unbounded budget sheds nothing — so the count is exact and the
  // digest matches a chaos-free run of the same config.
  EXPECT_EQ(result.submit_retries, 5u);
  EXPECT_EQ(result.submits_shed, 0u);
  EXPECT_GT(result.submit_backoff_us, 0u);

  svc::SvcLoadConfig clean = config;
  clean.service.ingest.chaos.plan = nullptr;
  const svc::SvcLoadResult control = svc::run_svc_load(clean);
  EXPECT_EQ(result.final_digest, control.final_digest);
  EXPECT_EQ(result.final_faults, control.final_faults);
}

TEST(ChaosServiceTest, WaitForEpochOnWithheldEpochTimesOutInsteadOfHanging) {
  FaultPlan plan({.poison_publish = 1.0});  // uncapped: withhold everything
  svc::Service service(empty16(), with_plan(plan));
  ASSERT_EQ(service.submit({svc::EventKind::Fault, {2, 2}}),
            svc::SubmitStatus::Accepted);
  service.flush();  // applied but withheld: epoch 1 never publishes

  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(service.wait_for_epoch(1, 50ms), svc::QueryStatus::Timeout);
  EXPECT_LT(std::chrono::steady_clock::now() - begin, 5s);
  EXPECT_GE(service.stale_epochs_pending(), 1u);

  // Disarm and nudge: the withheld labeling publishes via the empty-batch
  // retry path and the wait now succeeds.
  plan.disarm();
  service.retry_publish();
  ASSERT_EQ(service.wait_for_epoch(1, 5000ms), svc::QueryStatus::Ok);
  EXPECT_EQ(service.stale_epochs_pending(), 0u);
  EXPECT_EQ(service.query_status({2, 2}).node, svc::NodeStatus::Faulty);
}

TEST(ChaosServiceTest, WithheldEpochsServeStaleAnswersWithAccounting) {
  FaultPlan plan({.poison_publish = 1.0});
  svc::Service service(empty16(), with_plan(plan));
  ASSERT_EQ(service.submit({svc::EventKind::Fault, {7, 7}}),
            svc::SubmitStatus::Accepted);
  service.flush();

  // Still serving epoch 0: the fault is applied to the labeling but its
  // publication was withheld — the query answers (degraded, stale), and
  // both the watermark and the stale-served counter say so.
  const svc::StatusAnswer answer = service.query_status({7, 7});
  EXPECT_EQ(answer.status, svc::QueryStatus::Ok);
  EXPECT_EQ(answer.epoch, 0u);
  EXPECT_EQ(answer.node, svc::NodeStatus::Enabled);  // last good epoch
  const svc::ServiceStats stats = service.stats();
  EXPECT_GE(stats.stale_epochs_pending, 1u);
  EXPECT_GE(stats.stale_queries_served, 1u);
  EXPECT_EQ(stats.ingest.oracle_rejects, 1u);

  // The retained violation names the chaos check, not a real invariant.
  const auto violation = service.engine().last_violation();
  ASSERT_TRUE(violation.has_value());
  ASSERT_EQ(violation->violations.size(), 1u);
  EXPECT_EQ(violation->violations[0].check, check::kChaosPoisoned);
}

TEST(ChaosServiceTest, KillMidBatchCrashesRecoversAndRequeuesTheBacklog) {
  // Drive the engine directly for a deterministic mid-batch crash: the kill
  // is armed for the first publish stamp, so it fires while applying the
  // first batch.
  FaultPlan plan({.kill_at_stamps = {1}});
  svc::IngestConfig config;
  config.chaos.plan = &plan;
  svc::IngestEngine engine(empty16(), config);

  const std::vector<svc::FaultEvent> batch = {
      {svc::EventKind::Fault, {1, 1}}, {svc::EventKind::Fault, {2, 2}}};
  const svc::BatchOutcome outcome = engine.apply(batch);
  EXPECT_TRUE(outcome.crashed);
  EXPECT_FALSE(outcome.published);
  EXPECT_EQ(engine.snapshot()->epoch(), 0u);          // still the last good
  EXPECT_TRUE(engine.snapshot()->faults().empty());   // no partial state
  EXPECT_EQ(engine.stats().crashes, 1u);

  // Replay what the crash handed back plus the interrupted batch: the stamp
  // was consumed, so this publishes and converges.
  std::vector<svc::FaultEvent> replay = outcome.requeue;
  replay.insert(replay.end(), batch.begin(), batch.end());
  const svc::BatchOutcome retry = engine.apply(replay);
  EXPECT_TRUE(retry.published);
  EXPECT_EQ(engine.snapshot()->faults().size(), 2u);
}

TEST(ChaosServiceTest, ServiceSurvivesKillAndAnswersFromLastGoodEpoch) {
  FaultPlan plan({.kill_at_stamps = {1}});
  svc::Service service(empty16(), with_plan(plan));
  ASSERT_EQ(service.submit({svc::EventKind::Fault, {3, 3}}),
            svc::SubmitStatus::Accepted);
  service.flush();  // returns: the writer crashed rather than drained

  EXPECT_TRUE(service.ingest_crashed());
  EXPECT_EQ(service.query_status({3, 3}).status, svc::QueryStatus::Ok);
  EXPECT_EQ(service.query_status({3, 3}).node, svc::NodeStatus::Enabled);
  EXPECT_EQ(service.wait_for_epoch(1, 50ms), svc::QueryStatus::Timeout);

  // Restart: the requeued event drains, the consumed stamp lets it publish.
  EXPECT_TRUE(service.restart_ingest());
  EXPECT_FALSE(service.ingest_crashed());
  service.flush();
  EXPECT_EQ(service.query_status({3, 3}).node, svc::NodeStatus::Faulty);
  EXPECT_EQ(service.stats().ingest.crashes, 1u);
}

TEST(ChaosServiceTest, DuplicatedAndDeferredBatchesAreDigestSafe) {
  ChaosLoadConfig config;
  config.seed = 101;
  config.query_threads = 1;
  config.queries_per_thread = 100;
  config.plan = {.seed = 5,
                 .duplicate_batch = 0.5,
                 .max_duplicates = 8,
                 .defer_batch = 0.3,
                 .max_defers = 6,
                 .stall_batch = 0.2,
                 .stall_max_us = 100,
                 .max_stalls = 4};
  const ChaosLoadResult result = run_chaos_load(config);
  EXPECT_TRUE(result.ok()) << "digest " << result.chaos_digest << " vs clean "
                           << result.clean_digest;
  EXPECT_TRUE(result.digest_match);
}

// The acceptance invariant, at each required query-thread count: a chaos
// schedule that kills and restarts the ingest thread mid-batch (twice),
// poisons verdicts, denies admissions and perturbs batches converges to a
// published snapshot whose label digest equals the uninterrupted run's over
// the same net fault set.
class ChaosConvergenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChaosConvergenceTest, KillRestartConvergesToCleanDigest) {
  ChaosLoadConfig config;
  config.seed = 20010423;
  config.events = 192;
  config.query_threads = GetParam();
  config.queries_per_thread = 300;
  config.service.max_batch = 8;  // many epochs, so the kill stamps exist
  config.plan = {.seed = 13,
                 .deny_submit = 0.1,
                 .max_denies = 16,
                 .duplicate_batch = 0.2,
                 .max_duplicates = 6,
                 .defer_batch = 0.2,
                 .max_defers = 6,
                 .stall_batch = 0.2,
                 .stall_max_us = 150,
                 .max_stalls = 6,
                 .poison_publish = 0.2,
                 .max_poisons = 6,
                 .kill_at_stamps = {2, 5}};

  const ChaosLoadResult result = run_chaos_load(config);
  EXPECT_TRUE(result.digest_match)
      << "chaos digest " << result.chaos_digest << " != clean "
      << result.clean_digest << " (faults " << result.final_faults << ")";
  EXPECT_TRUE(result.epochs_monotone);
  EXPECT_EQ(result.stale_epochs_pending, 0u);
  EXPECT_EQ(result.injected.kills, 2u);
  EXPECT_GE(result.restarts, 1u);
  // Beyond the pinned kills, SOME soft chaos must have landed (which soft
  // points fire depends on how many batches/publishes the timing produced,
  // so individual counters are not pinned).
  EXPECT_GT(result.injected.denies + result.injected.duplicates +
                result.injected.defers + result.injected.stalls +
                result.injected.poisons,
            0u);
  EXPECT_GT(result.queries_ok, 0u);
}

INSTANTIATE_TEST_SUITE_P(QueryThreads, ChaosConvergenceTest,
                         ::testing::Values(1u, 2u, 8u));

}  // namespace
}  // namespace ocp::chaos
