// Schedule exploration: seeded generation, invariant-checked execution
// under chaos, ddmin shrinking to minimal repros, and the one-line
// repro round trip.
#include "chaos/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ocp::chaos {
namespace {

TEST(ChaosScheduleTest, GenerationIsDeterministicInSeed) {
  const std::vector<Op> a = generate_schedule(42, 64);
  const std::vector<Op> b = generate_schedule(42, 64);
  EXPECT_EQ(a, b);
  const std::vector<Op> c = generate_schedule(43, 64);
  EXPECT_NE(a, c);
}

TEST(ChaosScheduleTest, ReproStringRoundTrips) {
  const std::vector<Op> schedule = generate_schedule(7, 48);
  const std::string repro = to_string(schedule);
  const auto parsed = parse_schedule(repro);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);

  // Hand-written repro with every op kind.
  const auto hand = parse_schedule("S8 P Q16 R F Y K S1");
  ASSERT_TRUE(hand.has_value());
  ASSERT_EQ(hand->size(), 8u);
  EXPECT_EQ((*hand)[0], (Op{OpKind::Submit, 8}));
  EXPECT_EQ((*hand)[2], (Op{OpKind::Query, 16}));
  EXPECT_EQ((*hand)[6], (Op{OpKind::Restart, 0}));

  EXPECT_FALSE(parse_schedule("S8 X").has_value());   // unknown op
  EXPECT_FALSE(parse_schedule("S P").has_value());    // missing count
  EXPECT_FALSE(parse_schedule("Q999999").has_value()) // count overflow
      << "uint16 overflow must be rejected";
}

TEST(ChaosScheduleTest, CleanScheduleUpholdsEveryInvariant) {
  ScheduleConfig config;
  config.seed = 3;
  const std::vector<Op> schedule = generate_schedule(3, 48);
  const ScheduleResult result = run_schedule(config, schedule);
  EXPECT_TRUE(result.ok()) << to_string(schedule) << "\nfirst violation: "
                           << (result.violations.empty()
                                   ? ""
                                   : result.violations.front());
  EXPECT_EQ(result.final_digest, result.expected_digest);
  EXPECT_EQ(result.stale_epochs_pending, 0u);
}

TEST(ChaosScheduleTest, ChaoticSchedulesConvergeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.plan = {.seed = seed,
                   .deny_submit = 0.1,
                   .max_denies = 12,
                   .duplicate_batch = 0.25,
                   .max_duplicates = 6,
                   .defer_batch = 0.25,
                   .max_defers = 6,
                   .stall_batch = 0.2,
                   .stall_max_us = 100,
                   .max_stalls = 5,
                   .poison_publish = 0.25,
                   .max_poisons = 6,
                   .kill_at_stamps = {2}};
    const std::vector<Op> schedule = generate_schedule(seed * 17, 56);
    const ScheduleResult result = run_schedule(config, schedule);
    EXPECT_TRUE(result.ok())
        << "seed " << seed << ": " << to_string(schedule)
        << "\nfirst violation: "
        << (result.violations.empty() ? "" : result.violations.front());
  }
}

TEST(ChaosScheduleTest, ShrinkReturnsPassingScheduleUntouched) {
  ScheduleConfig config;
  std::vector<Op> schedule = generate_schedule(9, 24);
  std::size_t runs = 0;
  const std::vector<Op> shrunk = shrink_schedule(config, schedule, &runs);
  EXPECT_EQ(shrunk, schedule);  // nothing to shrink: the run passes
  EXPECT_EQ(runs, 1u);          // exactly the initial confirmation run
}

TEST(ChaosScheduleTest, DdminShrinksToTheMinimalFailingCore) {
  // Synthetic oracle: a schedule "fails" iff it contains at least one Pause
  // AND at least one Flush. The minimal failing subsequence is exactly one
  // of each; ddmin must find it without executing a single real service.
  const ScheduleOracle oracle = [](const ScheduleConfig&,
                                   const std::vector<Op>& ops) {
    const auto has = [&ops](OpKind kind) {
      return std::any_of(ops.begin(), ops.end(),
                         [kind](const Op& op) { return op.kind == kind; });
    };
    return has(OpKind::Pause) && has(OpKind::Flush);
  };

  std::vector<Op> schedule = generate_schedule(11, 64);
  schedule.push_back({OpKind::Pause, 0});   // guarantee the core exists
  schedule.push_back({OpKind::Flush, 0});
  ASSERT_TRUE(oracle({}, schedule));

  std::size_t runs = 0;
  const std::vector<Op> shrunk =
      shrink_schedule({}, schedule, &runs, oracle);
  ASSERT_EQ(shrunk.size(), 2u) << to_string(shrunk);
  EXPECT_TRUE(oracle({}, shrunk));
  EXPECT_GT(runs, 1u);
  // Exactly one of each survives (order follows the original schedule), and
  // the repro renders as a one-liner ready for chaos_soak --replay.
  const std::string repro = to_string(shrunk);
  EXPECT_TRUE(repro == "P F" || repro == "F P") << repro;
}

}  // namespace
}  // namespace ocp::chaos
