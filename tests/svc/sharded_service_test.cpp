// Sharded serving runtime: shard-grid geometry, halo-exchange convergence
// and the composite-digest-equals-single-writer invariant.
//
// The load-bearing assertion, repeated across every seam geometry and in the
// property sweeps: after the fleet reaches fixpoint, `composite_label_digest`
// over the per-shard snapshots is bit-identical to the `label_digest` a
// single-writer engine publishes when fed the very same event stream. That
// pins the whole halo protocol — versioned adoption, full-extent deltas,
// owner authority — because the digest folds every label plane plus the
// block/region structure, and a seam-spanning region reconstructed from
// stale or partial gossip would shift it.

#include "svc/sharded_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/generators.hpp"
#include "stats/rng.hpp"
#include "svc/loadgen.hpp"

namespace ocp::svc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

/// Single-writer reference: the same stream through one IngestEngine with
/// the same batching cap.
std::uint64_t single_writer_digest(const grid::CellSet& initial,
                                   std::span<const FaultEvent> stream,
                                   std::size_t max_batch = 256) {
  IngestEngine engine(initial, {});
  for (std::size_t i = 0; i < stream.size(); i += max_batch) {
    const std::size_t take = std::min(max_batch, stream.size() - i);
    (void)engine.apply(stream.subspan(i, take));
  }
  return engine.snapshot()->label_digest();
}

std::vector<FaultEvent> faults_at(std::initializer_list<Coord> cells) {
  std::vector<FaultEvent> events;
  for (const Coord c : cells) events.push_back({EventKind::Fault, c});
  return events;
}

/// A solid rectangle of faults [x0, x1] x [y0, y1].
std::vector<FaultEvent> fault_rect(std::int32_t x0, std::int32_t x1,
                                   std::int32_t y0, std::int32_t y1) {
  std::vector<FaultEvent> events;
  for (std::int32_t y = y0; y <= y1; ++y) {
    for (std::int32_t x = x0; x <= x1; ++x) {
      events.push_back({EventKind::Fault, {x, y}});
    }
  }
  return events;
}

void expect_rounds_match_single_writer(const Mesh2D& m, std::int32_t rows,
                                       std::int32_t cols,
                                       std::span<const FaultEvent> stream,
                                       std::size_t max_batch = 256) {
  const grid::CellSet initial(m);
  const ShardGrid grid(m, rows, cols);
  const ShardedRoundsResult sharded =
      run_sharded_rounds(grid, initial, stream, max_batch);
  EXPECT_EQ(sharded.composite_digest,
            single_writer_digest(initial, stream, max_batch))
      << rows << "x" << cols << " shards, " << stream.size() << " events";
}

// -- shard grid geometry ----------------------------------------------------

TEST(ShardGridTest, PartitionsEveryCellExactlyOnce) {
  const Mesh2D m(32, 32);
  const ShardGrid grid(m, 2, 2);
  ASSERT_EQ(grid.count(), 4u);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    const Coord c = m.coord(i);
    const std::uint32_t owner = grid.shard_of(c);
    ASSERT_LT(owner, grid.count());
    std::size_t owners = 0;
    for (std::uint32_t s = 0; s < grid.count(); ++s) {
      if (grid.owns(s, c)) ++owners;
    }
    EXPECT_EQ(owners, 1u);
    EXPECT_TRUE(grid.owns(owner, c));
  }
}

TEST(ShardGridTest, DegenerateRowAndColumnGrids) {
  const Mesh2D m(32, 32);
  const ShardGrid row(m, 1, 4);
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 4);
  const ShardGrid col(m, 4, 1);
  EXPECT_EQ(col.rows(), 4);
  EXPECT_EQ(col.cols(), 1);
  // A 1xS split assigns whole tile columns: x decides everything.
  for (std::int32_t y = 0; y < 32; y += 7) {
    EXPECT_EQ(row.shard_of({3, y}), row.shard_of({3, 0}));
  }
}

TEST(ShardGridTest, ClampsToTileGridAndSlotCapacity) {
  const Mesh2D m(32, 32);
  // Far more shards than tiles: clamped to the tile grid, then to 16 total
  // (the acquire-slot capacity the service's pin sets size against).
  const ShardGrid grid(m, 64, 64);
  EXPECT_LE(grid.count(), 16u);
  EXPECT_GE(grid.count(), 1u);
  const ShardGrid one(m, 1, 1);
  EXPECT_EQ(one.count(), 1u);
}

// -- seam geometries: digest equality vs the single writer ------------------

TEST(ShardedRoundsTest, BlockSpanningVerticalSeam) {
  const Mesh2D m(32, 32);
  // 1x2 shards: the vertical seam sits at a tile boundary (x = 16); the
  // block straddles it.
  const auto events = fault_rect(14, 17, 5, 8);
  expect_rounds_match_single_writer(m, 1, 2, events);
}

TEST(ShardedRoundsTest, BlockSpanningHorizontalSeam) {
  const Mesh2D m(32, 32);
  const auto events = fault_rect(5, 8, 14, 17);
  expect_rounds_match_single_writer(m, 2, 1, events);
}

TEST(ShardedRoundsTest, BlockSpanningCornerSeam) {
  const Mesh2D m(32, 32);
  // 2x2 shards: the block covers the four-corner point (16, 16) — every
  // shard owns a piece and must converge on the same component.
  const auto events = fault_rect(14, 17, 14, 17);
  expect_rounds_match_single_writer(m, 2, 2, events);
}

TEST(ShardedRoundsTest, TilesNarrowerThanFaultyBlock) {
  const Mesh2D m(32, 32);
  // 1x4 shards on a 32-mesh: each shard is 8 cells wide, the block is 12 —
  // wider than any single shard, so the halo extent must relay through a
  // middle shard that owns none of the block's endpoints.
  const auto events = fault_rect(6, 17, 10, 12);
  expect_rounds_match_single_writer(m, 1, 4, events);
}

TEST(ShardedRoundsTest, SmallBatchesForceMultiRoundGossip) {
  const Mesh2D m(32, 32);
  // max_batch 1: every event is its own round, halo deltas interleave with
  // later external events — the digest must still converge.
  const auto events = fault_rect(14, 17, 14, 17);
  expect_rounds_match_single_writer(m, 2, 2, events, 1);
}

TEST(ShardedRoundsTest, TorusWrapSeamCoincidingWithShardSeam) {
  const Mesh2D m(32, 32, Topology::Torus);
  // On a torus, x = 31 and x = 0 are adjacent; with 1x2 shards the wrap
  // seam IS a shard seam (first and last tile columns are different
  // shards). A block spanning the wrap must come out whole.
  std::vector<FaultEvent> events;
  for (std::int32_t y = 4; y <= 6; ++y) {
    for (const std::int32_t x : {30, 31, 0, 1}) {
      events.push_back({EventKind::Fault, {x, y}});
    }
  }
  expect_rounds_match_single_writer(m, 1, 2, events);
}

TEST(ShardedRoundsTest, RepairsRetractAcrossSeams) {
  const Mesh2D m(32, 32);
  // Grow a seam-spanning block, then repair the middle column: the two
  // remnants must relabel identically on both sides.
  auto events = fault_rect(14, 17, 5, 8);
  for (std::int32_t y = 5; y <= 8; ++y) {
    events.push_back({EventKind::Repair, {16, y}});
  }
  expect_rounds_match_single_writer(m, 1, 2, events, 4);
}

TEST(ShardedRoundsTest, CountsHaloTrafficOnlyWhenSeamsAreTouched) {
  const Mesh2D m(32, 32);
  const grid::CellSet initial(m);
  const ShardGrid grid(m, 2, 2);
  // Interior faults whose dirty extents stay inside one shard: no gossip.
  const auto interior = faults_at({{4, 4}, {26, 5}});
  const ShardedRoundsResult quiet =
      run_sharded_rounds(grid, initial, interior);
  EXPECT_EQ(quiet.halo_deltas, 0u);
  EXPECT_EQ(quiet.halo_events, 0u);
  EXPECT_EQ(quiet.applied, 2u);
  // A seam-touching block gossips.
  const auto seam = fault_rect(15, 16, 4, 5);
  const ShardedRoundsResult loud = run_sharded_rounds(grid, initial, seam);
  EXPECT_GT(loud.halo_deltas, 0u);
}

// -- property sweeps --------------------------------------------------------

TEST(ShardedRoundsTest, PropertyRandomChurnMatchesSingleWriter) {
  for (const Topology topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(32, 32, topology);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      stats::Rng rng(seed);
      const grid::CellSet initial = fault::uniform_random(m, 12, rng);
      const auto stream =
          generate_event_stream(m, initial, 160, 0.45, seed * 977 + 5);
      const std::uint64_t expected = [&] {
        IngestEngine engine(initial, {});
        for (std::size_t i = 0; i < stream.size(); i += 32) {
          const std::size_t take = std::min<std::size_t>(32, stream.size() - i);
          (void)engine.apply(std::span(stream).subspan(i, take));
        }
        return engine.snapshot()->label_digest();
      }();
      for (const auto& [rows, cols] :
           {std::pair{1, 1}, {1, 2}, {2, 2}, {4, 1}, {2, 4}}) {
        const ShardGrid grid(m, rows, cols);
        const ShardedRoundsResult result =
            run_sharded_rounds(grid, initial, stream, 32);
        EXPECT_EQ(result.composite_digest, expected)
            << "seed " << seed << ", " << rows << "x" << cols << " shards, "
            << (topology == Topology::Torus ? "torus" : "mesh");
      }
    }
  }
}

TEST(ShardedRoundsTest, DeterministicAcrossRepeatRuns) {
  const Mesh2D m(32, 32);
  stats::Rng rng(11);
  const grid::CellSet initial = fault::uniform_random(m, 10, rng);
  const auto stream = generate_event_stream(m, initial, 120, 0.4, 777);
  const ShardGrid grid(m, 2, 2);
  const ShardedRoundsResult a = run_sharded_rounds(grid, initial, stream, 16);
  const ShardedRoundsResult b = run_sharded_rounds(grid, initial, stream, 16);
  EXPECT_EQ(a.composite_digest, b.composite_digest);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.halo_deltas, b.halo_deltas);
  EXPECT_EQ(a.halo_events, b.halo_events);
  EXPECT_EQ(a.applied, b.applied);
}

// -- threaded service -------------------------------------------------------

TEST(ShardedServiceTest, SubmitFlushQueryAcrossShards) {
  const Mesh2D m(32, 32);
  ShardedService service(grid::CellSet(m),
                         {.shard_rows = 2, .shard_cols = 2});
  ASSERT_EQ(service.shard_grid().count(), 4u);
  // One fault per shard.
  for (const Coord c : {Coord{4, 4}, {20, 4}, {4, 20}, {20, 20}}) {
    ASSERT_EQ(service.submit({EventKind::Fault, c}), SubmitStatus::Accepted);
  }
  service.flush();
  for (const Coord c : {Coord{4, 4}, {20, 4}, {4, 20}, {20, 20}}) {
    const StatusAnswer answer = service.query_status(c);
    EXPECT_EQ(answer.status, QueryStatus::Ok);
    EXPECT_EQ(answer.node, NodeStatus::Faulty);
    EXPECT_GE(answer.epoch, 1u);
  }
  EXPECT_EQ(service.query_status({0, 0}).node, NodeStatus::Enabled);
  const auto stats = service.stats();
  EXPECT_EQ(stats.events_accepted, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ShardedServiceTest, SeamBlockConvergesToSingleWriterDigest) {
  const Mesh2D m(32, 32);
  const grid::CellSet initial(m);
  const auto events = fault_rect(14, 17, 14, 17);
  ShardedService service(initial, {.shard_rows = 2, .shard_cols = 2});
  for (const FaultEvent& e : events) {
    ASSERT_EQ(service.submit(e), SubmitStatus::Accepted);
  }
  // Threaded gossip needs iterated flushes only in theory — the barrier
  // already waits for empty inboxes — but a crashed-free flush must land at
  // the fixpoint in one call.
  service.flush();
  EXPECT_EQ(service.composite_digest(), single_writer_digest(initial, events));
  EXPECT_GT(service.stats().halo_deltas, 0u);
}

TEST(ShardedServiceTest, InvalidCoordinatesAnswerTyped) {
  const Mesh2D m(32, 32);
  ShardedService service(grid::CellSet(m), {.shard_rows = 2, .shard_cols = 2});
  EXPECT_EQ(service.query_status({-1, 5}).status,
            QueryStatus::InvalidArgument);
  EXPECT_EQ(service.query_region({99, 0}).status,
            QueryStatus::InvalidArgument);
  EXPECT_EQ(service.query_route({0, 0}, {99, 99}).status,
            QueryStatus::InvalidArgument);
  // Submitting an out-of-machine event is never fatal: it routes to shard 0
  // and is counted invalid there.
  EXPECT_EQ(service.submit({EventKind::Fault, {-3, -3}}),
            SubmitStatus::Accepted);
  service.flush();
  EXPECT_EQ(service.stats().ingest.invalid, 1u);
}

TEST(ShardedServiceTest, CrossShardRouteStitchesDelivered) {
  const Mesh2D m(32, 32);
  ShardedService service(grid::CellSet(m), {.shard_rows = 2, .shard_cols = 2});
  // A wall straddling the center forces the route to interact with labels
  // owned by several shards.
  for (const FaultEvent& e : fault_rect(12, 19, 15, 16)) {
    ASSERT_EQ(service.submit(e), SubmitStatus::Accepted);
  }
  service.flush();
  const RouteAnswer answer = service.query_route({2, 2}, {29, 29});
  ASSERT_EQ(answer.status, QueryStatus::Ok);
  ASSERT_TRUE(answer.route.delivered());
  // The stitched path is a genuine walk: 4-neighbor steps from src to dst.
  ASSERT_GE(answer.route.path.size(), 2u);
  EXPECT_EQ(answer.route.path.front(), (Coord{2, 2}));
  EXPECT_EQ(answer.route.path.back(), (Coord{29, 29}));
  for (std::size_t i = 1; i < answer.route.path.size(); ++i) {
    const Coord a = answer.route.path[i - 1];
    const Coord b = answer.route.path[i];
    EXPECT_EQ(std::abs(a.x - b.x) + std::abs(a.y - b.y), 1)
        << "hop " << i << " is not a mesh step";
    // Never through a faulty cell.
    EXPECT_NE(service.query_status(b).node, NodeStatus::Faulty);
  }
}

TEST(ShardedServiceTest, BatchCarriesCompositeEpochVector) {
  const Mesh2D m(32, 32);
  ShardedService service(grid::CellSet(m), {.shard_rows = 2, .shard_cols = 2});
  ASSERT_EQ(service.submit({EventKind::Fault, {4, 4}}),
            SubmitStatus::Accepted);
  service.flush();
  const std::vector<QueryItem> items = {
      {QueryKind::Status, {4, 4}, {}},     // shard 0
      {QueryKind::Status, {20, 20}, {}},   // shard 3
      {QueryKind::Region, {4, 5}, {}},     // shard 0 again: same pin
  };
  const ShardedBatchAnswer answer = service.query_batch(items);
  ASSERT_EQ(answer.status, QueryStatus::Ok);
  EXPECT_EQ(answer.completed, 3u);
  EXPECT_EQ(answer.items[0].node, NodeStatus::Faulty);
  ASSERT_EQ(answer.epochs.size(), 2u);  // only shards the batch touched
  EXPECT_LT(answer.epochs[0].shard, answer.epochs[1].shard);
  EXPECT_GE(answer.epochs[0].epoch, 1u);  // shard 0 applied the fault
}

TEST(ShardedServiceTest, LoadHarnessMatchesSingleWriterAtEveryThreadCount) {
  for (const Topology topology : {Topology::Mesh, Topology::Torus}) {
    SvcLoadConfig config = query_heavy_profile(1);
    config.topology = topology;
    config.events = 96;
    config.queries_per_thread = 150;
    const SvcLoadResult reference = run_svc_load(config);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      config.query_threads = threads;
      const ShardedLoadResult sharded = run_sharded_load(
          config, {.shard_rows = 2, .shard_cols = 2});
      EXPECT_EQ(sharded.stream_digest, reference.stream_digest);
      EXPECT_EQ(sharded.final_digest, reference.final_digest)
          << threads << " query threads, "
          << (topology == Topology::Torus ? "torus" : "mesh");
      EXPECT_TRUE(sharded.epochs_monotone);
      EXPECT_EQ(sharded.submits_shed, 0u);
    }
  }
}

TEST(ShardedServiceTest, OneShardFleetMatchesSingleWriterService) {
  SvcLoadConfig config = query_heavy_profile(2);
  config.events = 64;
  config.queries_per_thread = 100;
  const SvcLoadResult reference = run_svc_load(config);
  const ShardedLoadResult one =
      run_sharded_load(config, {.shard_rows = 1, .shard_cols = 1});
  EXPECT_EQ(one.final_digest, reference.final_digest);
  EXPECT_EQ(one.halo_deltas, 0u);  // nobody to gossip with
}

TEST(ShardedServiceTest, CompositeDigestHelperAgreesWithServiceAccessor) {
  const Mesh2D m(32, 32);
  ShardedService service(grid::CellSet(m), {.shard_rows = 2, .shard_cols = 2});
  for (const FaultEvent& e : fault_rect(15, 16, 15, 16)) {
    ASSERT_EQ(service.submit(e), SubmitStatus::Accepted);
  }
  service.flush();
  EXPECT_EQ(service.composite_digest(),
            composite_label_digest(service.shard_grid(), service.snapshots()));
}

}  // namespace
}  // namespace ocp::svc
