// Copy-on-write page sharing across epochs: small deltas must republish
// small snapshots. The headline property (and the ISSUE acceptance
// criterion): a single-fault delta on a 32x32 machine shares at least 75%
// of its serving pages with the predecessor — checked per epoch through
// `Snapshot::page_stats()` / `shares_pages_with`, and in aggregate through
// the svc.pages_* obs counters the ingest loop emits on publish. The torus
// cases pin the seam behavior: a delta whose unsafe component crosses the
// wraparound must dirty tiles on both sides, stay local otherwise, and
// leave the successor bit-identical to a from-scratch build.
#include <gtest/gtest.h>

#include <memory>

#include "obs/trace.hpp"
#include "svc/ingest.hpp"
#include "svc/snapshot.hpp"

namespace ocp::svc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// Folds one event's dirty cells into (dirty, padded) tile masks — the same
/// accumulation IngestEngine::apply performs.
void fold_delta(const grid::TileGrid& tiles, const labeling::EventDelta& delta,
                std::uint64_t& dirty, std::uint64_t& padded) {
  for (const Coord c : delta.dirty_cells) {
    dirty |= tiles.bit_of(c);
    padded |= tiles.padded_bits(c);
  }
}

TEST(SnapshotPagesTest, SingleCellDeltasShareAtLeastThreeQuartersOfPages) {
  const Mesh2D m(32, 32);
  obs::TraceSink sink;
  IngestConfig config;
  config.trace = {.sink = &sink, .level = obs::TraceLevel::Phase};
  IngestEngine engine(grid::CellSet(m), config);

  // Isolated tile-interior faults: each delta dirties exactly one tile.
  const Coord faults[] = {{4, 4},   {12, 4},  {20, 4},  {28, 4},
                          {4, 12},  {12, 12}, {20, 12}, {28, 12},
                          {4, 20},  {12, 20}, {20, 20}, {28, 20},
                          {4, 28},  {12, 28}, {20, 28}, {28, 28}};
  std::shared_ptr<const Snapshot> prev = engine.snapshot();
  for (const Coord c : faults) {
    const FaultEvent events[] = {{EventKind::Fault, c}};
    ASSERT_TRUE(engine.apply(events).published);
    const std::shared_ptr<const Snapshot> snap = engine.snapshot();

    const PageStats& stats = snap->page_stats();
    const std::size_t total = stats.copied + stats.shared;
    ASSERT_EQ(total, 2u * snap->tiles().tile_count())
        << "two planes, one page per tile each";
    EXPECT_GE(stats.shared * 4, total * 3)
        << "single-cell delta must share >= 75% of serving pages";

    // The sharing is physical, tile for tile: every clean tile's pages are
    // the predecessor's pages, and generations move only on dirty tiles.
    std::size_t shared_tiles = 0;
    for (std::uint32_t t = 0; t < snap->tiles().tile_count(); ++t) {
      if (snap->shares_pages_with(*prev, t)) {
        ++shared_tiles;
        EXPECT_EQ(snap->tile_generations()[t], prev->tile_generations()[t]);
      } else {
        EXPECT_EQ(snap->tile_generations()[t], snap->epoch());
      }
    }
    EXPECT_EQ(2 * shared_tiles, stats.shared);
    prev = snap;
  }

  // The obs counters the ingest loop publishes tell the same story in
  // aggregate, so dashboards can watch the share ratio without test hooks.
  const std::int64_t copied = sink.counter_value("svc.pages_copied");
  const std::int64_t shared = sink.counter_value("svc.pages_shared");
  EXPECT_EQ(copied + shared,
            static_cast<std::int64_t>(16u * 2u *
                                      engine.snapshot()->tiles().tile_count()));
  EXPECT_GE(shared, 3 * copied);
  EXPECT_GE(sink.counter_value("svc.dirty_cells"), 16);
  EXPECT_EQ(sink.counter_value("svc.epochs_published"), 16);
}

TEST(SnapshotPagesTest, TorusSeamDeltaDirtiesBothSidesAndMatchesFreshBuild) {
  const Mesh2D m(32, 32, mesh::Topology::Torus);
  labeling::MaintainedLabeling live{grid::CellSet(m)};
  const grid::TileGrid tiles(m);

  std::uint64_t dirty = 0;
  std::uint64_t padded = 0;
  fold_delta(tiles, live.add_fault({31, 0}), dirty, padded);
  auto base = Snapshot::build(1, live);

  // Warm the cache: one route far from the seam (must be carried), one
  // crossing it (its footprint touches the seam tiles; must be dropped).
  const routing::Route far_before = base->route({8, 16}, {24, 16});
  const routing::Route seam_before = base->route({30, 2}, {1, 2});
  ASSERT_TRUE(far_before.delivered());
  ASSERT_TRUE(seam_before.delivered());

  // The second fault 4-connects to {31,0} through the wraparound link, so
  // the merged unsafe component — and with it the dirty extent — spans the
  // seam: tiles on both the x-low and x-high edges of the machine.
  dirty = 0;
  padded = 0;
  fold_delta(tiles, live.add_fault({0, 0}), dirty, padded);
  const std::uint64_t low_edge_tile = tiles.bit_of({0, 0});
  const std::uint64_t high_edge_tile = tiles.bit_of({31, 0});
  EXPECT_NE(low_edge_tile, high_edge_tile);
  EXPECT_EQ(dirty & low_edge_tile, low_edge_tile);
  EXPECT_EQ(dirty & high_edge_tile, high_edge_tile);

  const auto next = Snapshot::next(*base, 2, live, dirty, padded);

  // Both seam tiles rebuilt, everything else shared — still >= 75%.
  EXPECT_FALSE(next->shares_pages_with(
      *base, static_cast<std::uint32_t>(tiles.tile_of({0, 0}))));
  EXPECT_FALSE(next->shares_pages_with(
      *base, static_cast<std::uint32_t>(tiles.tile_of({31, 0}))));
  const PageStats& stats = next->page_stats();
  EXPECT_GE(stats.shared * 4, (stats.copied + stats.shared) * 3);

  // Route-cache carry-over: the far route survived (identical to a fresh
  // computation), the seam-crossing one was invalidated.
  EXPECT_EQ(next->cache_carry_stats().carried, 1u);
  EXPECT_EQ(next->cache_carry_stats().invalidated, 1u);
  const routing::Route& far_after = next->route({8, 16}, {24, 16});
  EXPECT_EQ(far_after.path, far_before.path);
  EXPECT_EQ(next->route_cache().hits(), 1u)
      << "the carried entry must serve without recomputation";

  // The copy-on-write successor is bit-identical to a from-scratch build:
  // same digest, same served status and region identity at every node.
  const auto fresh = Snapshot::build(2, live);
  EXPECT_EQ(next->label_digest(), fresh->label_digest());
  for (std::int32_t y = 0; y < 32; ++y) {
    for (std::int32_t x = 0; x < 32; ++x) {
      const Coord c{x, y};
      ASSERT_EQ(next->status_of(c), fresh->status_of(c)) << x << "," << y;
      const labeling::DisabledRegion* a = next->region_of(c);
      const labeling::DisabledRegion* b = fresh->region_of(c);
      ASSERT_EQ(a == nullptr, b == nullptr) << x << "," << y;
      if (a != nullptr) {
        ASSERT_EQ(a->size(), b->size());
      }
    }
  }
}

TEST(SnapshotPagesTest, OracleWithheldEpochsAccumulateDirtyTiles) {
  // When the oracle withholds a publication, the pending dirty masks must
  // survive into the next successful publish — otherwise the served pages
  // of the withheld delta's tiles would silently go stale. Forcing a
  // withhold needs a violation, which a correct engine cannot produce, so
  // approximate the scenario at the Snapshot layer: skip an epoch (as the
  // engine does when the oracle rejects) and publish the union of two
  // deltas' masks against the last published snapshot.
  const Mesh2D m(32, 32);
  labeling::MaintainedLabeling live{grid::CellSet(m)};
  auto base = Snapshot::build(0, live);

  std::uint64_t dirty = 0;
  std::uint64_t padded = 0;
  const grid::TileGrid tiles(m);
  fold_delta(tiles, live.add_fault({4, 4}), dirty, padded);    // withheld
  fold_delta(tiles, live.add_fault({27, 27}), dirty, padded);  // published
  const auto next = Snapshot::next(*base, 1, live, dirty, padded);

  EXPECT_EQ(next->status_of({4, 4}), NodeStatus::Faulty);
  EXPECT_EQ(next->status_of({27, 27}), NodeStatus::Faulty);
  EXPECT_EQ(next->label_digest(), Snapshot::build(1, live)->label_digest());
  EXPECT_FALSE(next->shares_pages_with(
      *base, static_cast<std::uint32_t>(tiles.tile_of({4, 4}))));
  EXPECT_FALSE(next->shares_pages_with(
      *base, static_cast<std::uint32_t>(tiles.tile_of({27, 27}))));
}

}  // namespace
}  // namespace ocp::svc
