#include "geometry/convexity.hpp"

#include <gtest/gtest.h>

#include "fault/shapes.hpp"

namespace ocp::geom {
namespace {

using mesh::Coord;

TEST(ConvexityTest, EmptyAndSingletonAreConvex) {
  EXPECT_TRUE(is_orthogonal_convex(Region{}));
  EXPECT_TRUE(is_orthogonal_convex(Region({{3, 3}})));
}

TEST(ConvexityTest, RectanglesAreConvex) {
  EXPECT_TRUE(is_orthogonal_convex(fault::make_rectangle({0, 0}, 1, 1)));
  EXPECT_TRUE(is_orthogonal_convex(fault::make_rectangle({2, 3}, 5, 4)));
  EXPECT_TRUE(is_orthogonal_convex(fault::make_rectangle({0, 0}, 10, 1)));
}

// Section 2 of the paper: T-, L-, +-shapes are orthogonal convex; U- and
// H-shapes are not.
TEST(ConvexityTest, PaperShapeClassification) {
  EXPECT_TRUE(is_orthogonal_convex(fault::make_t_shape({0, 0}, 5, 3)));
  EXPECT_TRUE(is_orthogonal_convex(fault::make_l_shape({0, 0}, 5, 2)));
  EXPECT_TRUE(is_orthogonal_convex(fault::make_plus_shape({5, 5}, 2)));
  EXPECT_FALSE(is_orthogonal_convex(fault::make_u_shape({0, 0}, 5, 3)));
  EXPECT_FALSE(is_orthogonal_convex(fault::make_h_shape({0, 0}, 5, 5)));
}

TEST(ConvexityTest, RowGapBreaksConvexity) {
  EXPECT_FALSE(is_orthogonal_convex(Region({{0, 0}, {2, 0}})));
  EXPECT_FALSE(is_orthogonal_convex(Region({{0, 0}, {1, 0}, {3, 0}})));
}

TEST(ConvexityTest, ColumnGapBreaksConvexity) {
  EXPECT_FALSE(is_orthogonal_convex(Region({{0, 0}, {0, 2}})));
}

TEST(ConvexityTest, DiagonalPairIsConvexButNotFourConnected) {
  // Rows and columns each hold one cell -> orthogonal convex as a set; it is
  // a polygon only under 8-connectivity (the disabled-region case).
  const Region diag({{2, 1}, {3, 2}});
  EXPECT_TRUE(is_orthogonal_convex(diag));
  EXPECT_FALSE(is_orthogonal_convex_polygon(diag, Connectivity::Four));
  EXPECT_TRUE(is_orthogonal_convex_polygon(diag, Connectivity::Eight));
}

TEST(ConvexityTest, StaircaseIsConvex) {
  // A monotone staircase has one run per row and per column.
  const Region stairs({{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}});
  EXPECT_TRUE(is_orthogonal_convex(stairs));
  EXPECT_TRUE(is_orthogonal_convex_polygon(stairs));
}

TEST(ConvexityTest, NotStandardConvexButOrthogonallyConvex) {
  // An L-shape is not convex in the Euclidean sense yet orthogonal convex —
  // the distinction the paper's Definition 1 draws.
  const Region l = fault::make_l_shape({0, 0}, 4, 1);
  EXPECT_TRUE(is_orthogonal_convex(l));
}

TEST(CornerTest, RectangleHasFourCorners) {
  const Region r = fault::make_rectangle({1, 1}, 4, 3);
  const auto corners = corner_nodes(r);
  ASSERT_EQ(corners.size(), 4u);
  EXPECT_TRUE(is_corner_node(r, {1, 1}));
  EXPECT_TRUE(is_corner_node(r, {4, 1}));
  EXPECT_TRUE(is_corner_node(r, {1, 3}));
  EXPECT_TRUE(is_corner_node(r, {4, 3}));
  EXPECT_FALSE(is_corner_node(r, {2, 2}));
  EXPECT_FALSE(is_corner_node(r, {2, 1}));  // edge, not corner
}

TEST(CornerTest, SingleCellIsItsOwnCorner) {
  const Region r({{5, 5}});
  EXPECT_TRUE(is_corner_node(r, {5, 5}));
}

TEST(CornerTest, NonMemberIsNotACorner) {
  const Region r = fault::make_rectangle({0, 0}, 2, 2);
  EXPECT_FALSE(is_corner_node(r, {5, 5}));
}

TEST(CornerTest, PlusShapeCornersAreArmTipsAndElbows) {
  const Region plus = fault::make_plus_shape({5, 5}, 2);
  // Arm tips have out-neighbors in both dimensions.
  EXPECT_TRUE(is_corner_node(plus, {3, 5}));
  EXPECT_TRUE(is_corner_node(plus, {7, 5}));
  EXPECT_TRUE(is_corner_node(plus, {5, 3}));
  EXPECT_TRUE(is_corner_node(plus, {5, 7}));
  // The center has no out-neighbor at all.
  EXPECT_FALSE(is_corner_node(plus, {5, 5}));
}

TEST(QuadrantTest, MembershipIncludesAxes) {
  const Coord origin{5, 5};
  EXPECT_TRUE(in_quadrant(origin, Quadrant::PosPos, {5, 5}));
  EXPECT_TRUE(in_quadrant(origin, Quadrant::PosPos, {5, 9}));   // on y axis
  EXPECT_TRUE(in_quadrant(origin, Quadrant::NegNeg, {5, 5}));   // origin
  EXPECT_TRUE(in_quadrant(origin, Quadrant::NegPos, {5, 6}));
  EXPECT_FALSE(in_quadrant(origin, Quadrant::PosPos, {4, 6}));
  EXPECT_FALSE(in_quadrant(origin, Quadrant::NegNeg, {6, 6}));
}

// Lemma 2: for any node u inside a region produced by the enabled/disabled
// rule, each quadrant anchored at u holds a corner node. Pure-geometry
// sanity check on a rectangle (where it holds for any interior node).
TEST(QuadrantTest, RectangleQuadrantsHoldCorners) {
  const Region r = fault::make_rectangle({0, 0}, 5, 4);
  for (Coord u : r.cells()) {
    for (Quadrant q : kAllQuadrants) {
      EXPECT_TRUE(quadrant_has_corner(r, u, q))
          << "origin " << mesh::to_string(u);
    }
  }
}

}  // namespace
}  // namespace ocp::geom
