#include "geometry/rect.hpp"

#include <gtest/gtest.h>

namespace ocp::geom {
namespace {

using mesh::Coord;

TEST(RectTest, DimensionsInclusive) {
  const Rect r{{1, 2}, {4, 3}};
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 2);
  EXPECT_EQ(r.area(), 8);
  EXPECT_EQ(r.diameter(), 4);  // (4-1) + (2-1)
}

TEST(RectTest, SingleCell) {
  const Rect r = Rect::cell({5, 5});
  EXPECT_EQ(r.width(), 1);
  EXPECT_EQ(r.height(), 1);
  EXPECT_EQ(r.area(), 1);
  EXPECT_EQ(r.diameter(), 0);
}

TEST(RectTest, ContainsIsInclusive) {
  const Rect r{{1, 1}, {3, 3}};
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({3, 3}));
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({0, 2}));
  EXPECT_FALSE(r.contains({4, 2}));
  EXPECT_FALSE(r.contains({2, 0}));
}

TEST(RectTest, ExpandedCoversNewPoint) {
  Rect r = Rect::cell({2, 2});
  r = r.expanded({5, 1});
  EXPECT_EQ(r.lo, (Coord{2, 1}));
  EXPECT_EQ(r.hi, (Coord{5, 2}));
  r = r.expanded({0, 7});
  EXPECT_EQ(r.lo, (Coord{0, 1}));
  EXPECT_EQ(r.hi, (Coord{5, 7}));
}

TEST(RectTest, DistanceZeroWhenOverlapping) {
  const Rect a{{0, 0}, {3, 3}};
  const Rect b{{2, 2}, {5, 5}};
  EXPECT_EQ(distance(a, b), 0);
}

TEST(RectTest, DistanceZeroWhenTouching) {
  const Rect a{{0, 0}, {1, 1}};
  const Rect b{{1, 1}, {3, 3}};
  EXPECT_EQ(distance(a, b), 0);
}

TEST(RectTest, DistanceAlongOneAxis) {
  const Rect a{{0, 0}, {1, 1}};
  const Rect b{{4, 0}, {5, 1}};
  EXPECT_EQ(distance(a, b), 3);
  EXPECT_EQ(distance(b, a), 3);
}

TEST(RectTest, DistanceDiagonal) {
  const Rect a{{0, 0}, {1, 1}};
  const Rect b{{3, 4}, {5, 6}};
  EXPECT_EQ(distance(a, b), 2 + 3);
}

}  // namespace
}  // namespace ocp::geom
