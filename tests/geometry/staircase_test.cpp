#include "geometry/staircase.hpp"

#include <gtest/gtest.h>

#include "fault/shapes.hpp"
#include "geometry/convexity.hpp"
#include "stats/rng.hpp"

namespace ocp::geom {
namespace {

using mesh::Coord;

TEST(RowProfileTest, ProfilesOfLShape) {
  const Region l = fault::make_l_shape({0, 0}, 4, 2);  // 2-wide arm, 4 tall
  const auto rows = row_profiles(l);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].y, 0);
  EXPECT_EQ(rows[0].xmin, 0);
  EXPECT_EQ(rows[0].xmax, 3);  // bottom bar
  EXPECT_EQ(rows[3].xmax, 1);  // top of the vertical arm
}

TEST(ValleyHillTest, Classification) {
  EXPECT_TRUE(is_valley({3, 2, 1, 1, 2, 5}));
  EXPECT_TRUE(is_valley({1, 2, 3}));      // empty descending part
  EXPECT_TRUE(is_valley({3, 2, 1}));      // empty ascending part
  EXPECT_TRUE(is_valley({2}));
  EXPECT_TRUE(is_valley({}));
  EXPECT_FALSE(is_valley({1, 2, 1}));     // that's a hill
  EXPECT_FALSE(is_valley({2, 1, 2, 1}));  // zigzag

  EXPECT_TRUE(is_hill({1, 2, 3, 3, 1}));
  EXPECT_TRUE(is_hill({3, 2, 1}));
  EXPECT_FALSE(is_hill({2, 1, 2}));
}

TEST(FastConvexityTest, AgreesWithDefinitionalTestOnShapes) {
  const Region shapes[] = {
      fault::make_rectangle({0, 0}, 5, 3),
      fault::make_l_shape({0, 0}, 5, 2),
      fault::make_t_shape({0, 0}, 5, 2),
      fault::make_plus_shape({6, 6}, 3),
      fault::make_u_shape({0, 0}, 5, 3),
      fault::make_h_shape({0, 0}, 5, 5),
      Region({{0, 0}, {1, 1}}),
      Region({{0, 0}, {2, 2}}),
      Region({{0, 0}}),
  };
  for (const Region& r : shapes) {
    EXPECT_EQ(is_orthogonal_convex_polygon_fast(r),
              is_orthogonal_convex(r) &&
                  r.is_connected(Connectivity::Eight))
        << r.to_ascii();
  }
}

TEST(FastConvexityTest, AgreesOnRandomRegions) {
  stats::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Coord> cells;
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < n; ++i) {
      cells.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 5)),
                       static_cast<std::int32_t>(rng.uniform_int(0, 5))});
    }
    const Region r(std::move(cells));
    ASSERT_EQ(is_orthogonal_convex_polygon_fast(r),
              is_orthogonal_convex(r) &&
                  r.is_connected(Connectivity::Eight))
        << r.to_ascii();
  }
}

TEST(FastConvexityTest, EmptyRegionIsNotAPolygon) {
  EXPECT_FALSE(is_orthogonal_convex_polygon_fast(Region{}));
}

TEST(StaircaseTest, RectangleChains) {
  const Region r = fault::make_rectangle({2, 2}, 4, 3);
  const Staircases s = staircase_decomposition(r);
  // Left profile is constant: SW chain is just the bottom-left cell, NW
  // walks the left edge.
  EXPECT_EQ(s.south_west.front(), (Coord{2, 2}));
  EXPECT_EQ(s.north_west.back(), (Coord{2, 4}));
  EXPECT_EQ(s.south_east.front(), (Coord{5, 2}));
  EXPECT_EQ(s.north_east.back(), (Coord{5, 4}));
}

TEST(StaircaseTest, ChainsAreMonotoneAndInsideRegion) {
  const Region shapes[] = {
      fault::make_rectangle({0, 0}, 4, 4),
      fault::make_l_shape({0, 0}, 5, 2),
      fault::make_t_shape({0, 0}, 7, 3),
      fault::make_plus_shape({8, 8}, 3),
  };
  for (const Region& r : shapes) {
    ASSERT_TRUE(is_orthogonal_convex_polygon_fast(r));
    const Staircases s = staircase_decomposition(r);
    for (const auto* chain :
         {&s.south_west, &s.north_west, &s.south_east, &s.north_east}) {
      ASSERT_FALSE(chain->empty());
      for (std::size_t i = 0; i < chain->size(); ++i) {
        EXPECT_TRUE(r.contains((*chain)[i]));
        if (i > 0) {
          EXPECT_EQ((*chain)[i].y, (*chain)[i - 1].y + 1);
        }
      }
    }
    // Monotonicity of the x profiles along each chain.
    for (std::size_t i = 1; i < s.south_west.size(); ++i) {
      EXPECT_LE(s.south_west[i].x, s.south_west[i - 1].x);
    }
    for (std::size_t i = 1; i < s.north_west.size(); ++i) {
      EXPECT_GE(s.north_west[i].x, s.north_west[i - 1].x);
    }
    for (std::size_t i = 1; i < s.south_east.size(); ++i) {
      EXPECT_GE(s.south_east[i].x, s.south_east[i - 1].x);
    }
    for (std::size_t i = 1; i < s.north_east.size(); ++i) {
      EXPECT_LE(s.north_east[i].x, s.north_east[i - 1].x);
    }
  }
}

TEST(StaircaseTest, ChainsShareCornerCells) {
  const Region plus = fault::make_plus_shape({5, 5}, 2);
  const Staircases s = staircase_decomposition(plus);
  // SW's last cell is NW's first (the leftmost row), same on the right.
  EXPECT_EQ(s.south_west.back(), s.north_west.front());
  EXPECT_EQ(s.south_east.back(), s.north_east.front());
  // Bottom cells of the left/right chains sit on the bottom row.
  EXPECT_EQ(s.south_west.front().y, plus.bounding_box().lo.y);
  EXPECT_EQ(s.south_east.front().y, plus.bounding_box().lo.y);
}

TEST(StaircaseTest, DiagonalChainIsAllCorners) {
  const Region diag({{0, 0}, {1, 1}, {2, 2}});
  ASSERT_TRUE(is_orthogonal_convex_polygon_fast(diag));
  const Staircases s = staircase_decomposition(diag);
  // xmin is ascending: the leftmost row is the bottom one, so the whole
  // left profile belongs to the NW chain; mirrored on the right, the whole
  // ascent of xmax belongs to the SE chain.
  EXPECT_EQ(s.south_west.size(), 1u);
  EXPECT_EQ(s.north_west.size(), 3u);
  EXPECT_EQ(s.south_east.size(), 3u);
  EXPECT_EQ(s.north_east.size(), 1u);
}

}  // namespace
}  // namespace ocp::geom
