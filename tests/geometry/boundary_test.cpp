#include "geometry/boundary.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "fault/shapes.hpp"
#include "geometry/convexity.hpp"

namespace ocp::geom {
namespace {

using mesh::Coord;

TEST(BoundaryTest, SingleCellBoundary) {
  const Region r({{3, 3}});
  EXPECT_EQ(boundary_cells(r).size(), 1u);
  EXPECT_EQ(edge_perimeter(r), 4);
}

TEST(BoundaryTest, RectanglePerimeter) {
  const Region r = fault::make_rectangle({0, 0}, 4, 3);
  EXPECT_EQ(edge_perimeter(r), 2 * (4 + 3));
  // Boundary cells: everything except the 2x1 interior.
  EXPECT_EQ(boundary_cells(r).size(), 12u - 2u);
}

TEST(BoundaryTest, OuterRingOfSingleCell) {
  const Region r({{3, 3}});
  const Region ring = outer_ring(r);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_TRUE(ring.contains({2, 2}));
  EXPECT_TRUE(ring.contains({4, 4}));
  EXPECT_FALSE(ring.contains({3, 3}));
}

TEST(BoundaryTest, OuterRingOfRectangle) {
  const Region r = fault::make_rectangle({1, 1}, 3, 2);
  const Region ring = outer_ring(r);
  // Frame of a 3x2 rectangle: (3+2)*2 + 4 corners + 2*... = 5x4 box minus
  // the 3x2 region = 20 - 6 = 14 cells.
  EXPECT_EQ(ring.size(), 14u);
  for (Coord c : ring.cells()) {
    EXPECT_FALSE(r.contains(c));
  }
}

TEST(BoundaryTest, TraceVisitsEveryRingCellOnce) {
  const Region shapes[] = {
      fault::make_rectangle({2, 2}, 1, 1),
      fault::make_rectangle({2, 2}, 4, 3),
      fault::make_l_shape({2, 2}, 5, 2),
      fault::make_t_shape({2, 2}, 5, 2),
      fault::make_plus_shape({8, 8}, 2),
      // Diagonally-chained regions (the 8-connected disabled-region case):
      // the walk must follow the pinch instead of cutting the corner.
      Region({{3, 3}, {4, 4}}),
      Region({{3, 3}, {4, 4}, {5, 5}}),
      Region({{3, 3}, {4, 4}, {3, 5}}),
  };
  for (const Region& r : shapes) {
    const Region ring = outer_ring(r);
    const auto walk = trace_outer_ring(r);
    EXPECT_EQ(walk.size(), ring.size());
    std::unordered_set<Coord> seen(walk.begin(), walk.end());
    EXPECT_EQ(seen.size(), walk.size()) << "walk revisits a cell";
    for (Coord c : walk) {
      EXPECT_TRUE(ring.contains(c));
    }
  }
}

TEST(BoundaryTest, TraceStepsAreEightAdjacent) {
  const Region r = fault::make_plus_shape({8, 8}, 3);
  const auto walk = trace_outer_ring(r);
  ASSERT_GE(walk.size(), 3u);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    const Coord a = walk[i];
    const Coord b = walk[(i + 1) % walk.size()];
    const Coord d = b - a;
    EXPECT_LE(std::abs(d.x), 1);
    EXPECT_LE(std::abs(d.y), 1);
    EXPECT_NE(a, b);
  }
}

TEST(BoundaryTest, EmptyRegionHasEmptyRing) {
  EXPECT_TRUE(trace_outer_ring(Region{}).empty());
  EXPECT_TRUE(outer_ring(Region{}).empty());
  EXPECT_EQ(edge_perimeter(Region{}), 0);
}

TEST(BoundaryTest, PerimeterOfConcaveShapeCountsPocketEdges) {
  const Region u = fault::make_u_shape({0, 0}, 5, 3);
  // U 5x3 with towers of width 1: perimeter is larger than its bounding
  // box's perimeter because the pocket adds interior boundary.
  EXPECT_GT(edge_perimeter(u), 2 * (5 + 3));
}

}  // namespace
}  // namespace ocp::geom
