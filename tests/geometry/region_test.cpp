#include "geometry/region.hpp"

#include <gtest/gtest.h>

#include "fault/shapes.hpp"

namespace ocp::geom {
namespace {

using mesh::Coord;

TEST(RegionTest, EmptyRegion) {
  const Region r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.contains({0, 0}));
  EXPECT_EQ(r.diameter(), 0);
  EXPECT_EQ(r.component_count(), 0u);
}

TEST(RegionTest, DeduplicatesAndSortsRowMajor) {
  const Region r({{2, 1}, {0, 0}, {2, 1}, {1, 0}});
  EXPECT_EQ(r.size(), 3u);
  const auto cells = r.cells();
  EXPECT_EQ(cells[0], (Coord{0, 0}));
  EXPECT_EQ(cells[1], (Coord{1, 0}));
  EXPECT_EQ(cells[2], (Coord{2, 1}));
}

TEST(RegionTest, ContainsUsesBinarySearch) {
  const Region r({{0, 0}, {5, 5}, {3, 2}});
  EXPECT_TRUE(r.contains({3, 2}));
  EXPECT_FALSE(r.contains({2, 3}));
  EXPECT_FALSE(r.contains({-1, -1}));
}

TEST(RegionTest, BoundingBox) {
  const Region r({{1, 4}, {3, 2}, {2, 2}});
  EXPECT_EQ(r.bounding_box().lo, (Coord{1, 2}));
  EXPECT_EQ(r.bounding_box().hi, (Coord{3, 4}));
}

TEST(RegionTest, RectangleDetection) {
  EXPECT_TRUE(fault::make_rectangle({2, 3}, 4, 2).is_rectangle());
  EXPECT_FALSE(fault::make_l_shape({0, 0}, 4, 2).is_rectangle());
  EXPECT_TRUE(Region({{7, 7}}).is_rectangle());
}

TEST(RegionTest, DiameterMatchesBruteForce) {
  const Region shapes[] = {
      fault::make_rectangle({0, 0}, 5, 3),
      fault::make_l_shape({0, 0}, 6, 2),
      fault::make_plus_shape({10, 10}, 3),
      fault::make_u_shape({0, 0}, 5, 4),
      Region({{0, 0}, {7, 3}, {2, 9}}),
  };
  for (const Region& r : shapes) {
    std::int32_t brute = 0;
    for (Coord a : r.cells()) {
      for (Coord b : r.cells()) {
        brute = std::max(brute, mesh::manhattan(a, b));
      }
    }
    EXPECT_EQ(r.diameter(), brute);
  }
}

TEST(RegionTest, ConnectivityFourVsEight) {
  const Region diag({{0, 0}, {1, 1}});
  EXPECT_FALSE(diag.is_connected(Connectivity::Four));
  EXPECT_TRUE(diag.is_connected(Connectivity::Eight));
  EXPECT_EQ(diag.component_count(Connectivity::Four), 2u);
  EXPECT_EQ(diag.component_count(Connectivity::Eight), 1u);
}

TEST(RegionTest, ShapesAreConnected) {
  EXPECT_TRUE(fault::make_l_shape({0, 0}, 5, 2).is_connected());
  EXPECT_TRUE(fault::make_t_shape({0, 0}, 5, 3).is_connected());
  EXPECT_TRUE(fault::make_u_shape({0, 0}, 5, 3).is_connected());
  EXPECT_TRUE(fault::make_h_shape({0, 0}, 5, 5).is_connected());
  EXPECT_TRUE(fault::make_plus_shape({5, 5}, 2).is_connected());
}

TEST(RegionTest, DistanceToOtherRegion) {
  const Region a({{0, 0}, {1, 0}});
  const Region b({{4, 0}});
  EXPECT_EQ(a.distance_to(b), 3);
  const Region c({{1, 1}});
  EXPECT_EQ(a.distance_to(c), 1);
}

TEST(RegionTest, DifferenceAndUnion) {
  const Region a = fault::make_rectangle({0, 0}, 3, 3);
  const Region b = fault::make_rectangle({1, 1}, 3, 3);
  const Region diff = a.difference(b);
  EXPECT_EQ(diff.size(), 9u - 4u);
  EXPECT_TRUE(diff.contains({0, 0}));
  EXPECT_FALSE(diff.contains({1, 1}));
  const Region uni = a.united(b);
  EXPECT_EQ(uni.size(), 9u + 9u - 4u);
}

TEST(RegionTest, AsciiRendering) {
  const Region r({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_EQ(r.to_ascii(), ".#\n##\n");
}

TEST(RegionTest, EqualityIgnoresConstructionOrder) {
  const Region a({{0, 0}, {1, 1}});
  const Region b({{1, 1}, {0, 0}});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ocp::geom
