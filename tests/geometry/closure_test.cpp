// Rectilinear convex closure: correctness of the minimal orthogonal convex
// superset used by the Theorem 2 / Corollary checks.
#include <gtest/gtest.h>

#include "fault/shapes.hpp"
#include "geometry/convexity.hpp"
#include "stats/rng.hpp"

namespace ocp::geom {
namespace {

using mesh::Coord;

TEST(ClosureTest, EmptyAndSingletonAreFixed) {
  EXPECT_TRUE(rectilinear_convex_closure(Region{}).empty());
  const Region single({{4, 2}});
  EXPECT_EQ(rectilinear_convex_closure(single), single);
}

TEST(ClosureTest, ConvexInputIsUnchanged) {
  const Region shapes[] = {
      fault::make_rectangle({0, 0}, 4, 3),
      fault::make_l_shape({0, 0}, 5, 2),
      fault::make_t_shape({0, 0}, 5, 2),
      fault::make_plus_shape({5, 5}, 2),
  };
  for (const Region& r : shapes) {
    EXPECT_EQ(rectilinear_convex_closure(r), r);
  }
}

TEST(ClosureTest, FillsRowGap) {
  const Region gap({{0, 0}, {3, 0}});
  const Region expected({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_EQ(rectilinear_convex_closure(gap), expected);
}

TEST(ClosureTest, FillsColumnGap) {
  const Region gap({{2, 1}, {2, 4}});
  EXPECT_EQ(rectilinear_convex_closure(gap).size(), 4u);
}

TEST(ClosureTest, DiagonalPairStaysTwoCells) {
  // No row or column holds two cells, so nothing fills: the diagonal pair is
  // its own closure (this is why the disabled region {(2,1),(3,2)} of the
  // paper's worked example is already minimal).
  const Region diag({{2, 1}, {3, 2}});
  EXPECT_EQ(rectilinear_convex_closure(diag), diag);
}

TEST(ClosureTest, UShapeClosesItsPocket) {
  const Region u = fault::make_u_shape({0, 0}, 5, 3);
  const Region closed = rectilinear_convex_closure(u);
  EXPECT_TRUE(is_orthogonal_convex(closed));
  // The pocket cells between the towers get filled.
  EXPECT_TRUE(closed.contains({1, 1}));
  EXPECT_TRUE(closed.contains({3, 2}));
  EXPECT_EQ(closed.size(), 15u);  // full 5x3 bounding box
}

TEST(ClosureTest, HShapeClosesToFullBox) {
  const Region h = fault::make_h_shape({0, 0}, 5, 5);
  const Region closed = rectilinear_convex_closure(h);
  EXPECT_TRUE(is_orthogonal_convex(closed));
  EXPECT_TRUE(closed.is_rectangle());
}

TEST(ClosureTest, CascadingFills) {
  // Corner points whose row fill enables a column fill: closure must iterate
  // to the fixpoint, not stop after one pass.
  const Region zig({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Region closed = rectilinear_convex_closure(zig);
  EXPECT_TRUE(is_orthogonal_convex(closed));
  EXPECT_EQ(closed.size(), 9u);  // full 3x3
}

TEST(ClosureTest, ResultIsAlwaysConvexAndMinimalOnRandomInputs) {
  stats::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Coord> cells;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) {
      cells.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 9)),
                       static_cast<std::int32_t>(rng.uniform_int(0, 9))});
    }
    const Region seed(std::move(cells));
    const Region closed = rectilinear_convex_closure(seed);

    // Superset of the seed.
    for (Coord c : seed.cells()) {
      ASSERT_TRUE(closed.contains(c));
    }
    // Orthogonal convex.
    ASSERT_TRUE(is_orthogonal_convex(closed));
    // Idempotent.
    ASSERT_EQ(rectilinear_convex_closure(closed), closed);
    // Minimal: removing any non-seed cell breaks convexity, i.e. every
    // added cell is forced. (Closure is the least fixed point, so each
    // added cell lies on a line between two closed cells.)
    for (Coord c : closed.cells()) {
      if (seed.contains(c)) continue;
      const Region without = closed.difference(Region({c}));
      ASSERT_FALSE(is_orthogonal_convex(without))
          << "cell " << mesh::to_string(c) << " was not forced";
    }
  }
}

TEST(ClosureTest, ClosureWithinBoundingBox) {
  stats::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Coord> cells;
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < n; ++i) {
      cells.push_back({static_cast<std::int32_t>(rng.uniform_int(-5, 5)),
                       static_cast<std::int32_t>(rng.uniform_int(-5, 5))});
    }
    const Region seed(std::move(cells));
    const Region closed = rectilinear_convex_closure(seed);
    EXPECT_EQ(closed.bounding_box(), seed.bounding_box());
  }
}

}  // namespace
}  // namespace ocp::geom
