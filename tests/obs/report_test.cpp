#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/traffic_sim.hpp"
#include "obs/trace.hpp"

namespace ocp::obs {
namespace {

#ifndef OCP_OBS_DISABLE

TEST(TraceReportTest, JsonlRoundTripReproducesSpansInstantsAndCounters) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Round};
  for (int i = 0; i < 4; ++i) {
    const Span s(trace, "phase");
    trace.instant("frontier", 10 * (i + 1));
  }
  trace.counter("flips", 7);
  trace.counter("flips", 3);
  trace.counter("messages", 100);

  std::stringstream buf;
  sink.write_jsonl(buf);
  const TraceReport report = summarize_jsonl(buf);

  EXPECT_EQ(report.schema, "ocpmesh-trace-v1");
  EXPECT_EQ(report.malformed_lines, 0u);
  const SpanStat* phase = report.span("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count, 4u);
  EXPECT_GE(phase->total_ms, 0.0);
  EXPECT_LE(phase->min_ms, phase->max_ms);

  const InstantStat* frontier = report.instant("frontier");
  ASSERT_NE(frontier, nullptr);
  EXPECT_EQ(frontier->count, 4u);
  EXPECT_EQ(frontier->sum, 100);
  EXPECT_EQ(frontier->min, 10);
  EXPECT_EQ(frontier->max, 40);

  EXPECT_EQ(report.counter("flips"), 10);
  EXPECT_EQ(report.counter("messages"), 100);
  EXPECT_EQ(report.counter("absent"), 0);
  EXPECT_EQ(report.span("absent"), nullptr);
  EXPECT_EQ(report.instant("absent"), nullptr);
}

TEST(TraceReportTest, ChromeExportIsValidTraceEventJson) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Round};
  {
    const Span outer(trace, "outer");
    const Span inner(trace, "inner \"quoted\"\\name");  // exercises escaping
    trace.instant("tick", -5);
  }
  trace.counter("total", 12);

  std::stringstream buf;
  sink.write_chrome_trace(buf);
  const std::string text = buf.str();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceReportTest, JsonlExportIsValidJsonPerLine) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Round};
  {
    const Span s(trace, "a");
    trace.instant("i", 1);
  }
  trace.counter("c", 1);
  std::stringstream buf;
  sink.write_jsonl(buf);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(buf, line)) {
    ++lines;
    EXPECT_TRUE(json_valid(line)) << line;
  }
  EXPECT_GE(lines, 5u);  // meta + b + e + i + c (+ h)
}

// Acceptance: a traced pipeline run on a 64x64 mesh at 10% faults produces
// per-round spans (non-zero count) and flip counters the report can see.
TEST(TraceReportTest, TracedPipelineHasPerRoundSpans) {
  TraceSink sink;
  const mesh::Mesh2D m = mesh::Mesh2D::square(64);
  stats::Rng rng(1);
  const grid::CellSet faults = fault::uniform_random(
      m, static_cast<std::size_t>(m.node_count() / 10), rng);

  labeling::PipelineOptions opts;
  opts.trace = {&sink, TraceLevel::Round};
  const auto result = labeling::run_pipeline(faults, opts);
  ASSERT_GT(result.blocks.size(), 0u);

  std::stringstream buf;
  sink.write_jsonl(buf);
  const TraceReport report = summarize_jsonl(buf);

  const SpanStat* round = report.span("sync.round");
  ASSERT_NE(round, nullptr);
  EXPECT_GT(round->count, 0u);
  // Both phases and the run itself are spans.
  ASSERT_NE(report.span("pipeline.run"), nullptr);
  EXPECT_EQ(report.span("pipeline.run")->count, 1u);
  ASSERT_NE(report.span("pipeline.safety"), nullptr);
  ASSERT_NE(report.span("pipeline.activation"), nullptr);
  // Rounds executed match the per-round span count.
  const auto rounds = static_cast<std::uint64_t>(
      result.safety_stats.rounds_executed +
      result.activation_stats.rounds_executed);
  EXPECT_EQ(round->count, rounds);
  // At 10% faults some nodes flip and messages flow.
  EXPECT_GT(report.counter("pipeline.nodes_flipped"), 0);
  EXPECT_GT(report.counter("pipeline.messages_broadcast"), 0);
  EXPECT_GT(report.counter("sync.nodes_evaluated"), 0);
  const InstantStat* frontier = report.instant("sync.frontier");
  ASSERT_NE(frontier, nullptr);
  EXPECT_GT(frontier->count, 0u);
}

// Acceptance: a traced BM_TrafficSimEndToEnd-sized netsim run reports
// wormhole work and the Chrome export stays schema-valid at that volume.
TEST(TraceReportTest, TracedNetsimRunReportsWormholeWork) {
  TraceSink sink;
  const mesh::Mesh2D m = mesh::Mesh2D::square(24);
  stats::Rng rng(3);
  const auto faults = fault::clustered(m, 3, 8, rng);
  labeling::PipelineOptions label_opts;
  label_opts.engine = labeling::Engine::Reference;
  const auto labeled = labeling::run_pipeline(faults, label_opts);
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);

  netsim::TrafficSimConfig config;
  config.injection_rate = 0.004;
  config.warm_cycles = 256;
  config.num_vcs = 2;
  config.trace = {&sink, TraceLevel::Round};
  const auto result = netsim::run_traffic_sim(m, blocked, router, config);
  ASSERT_GT(result.delivered_packets, 0u);

  std::stringstream buf;
  sink.write_jsonl(buf);
  const TraceReport report = summarize_jsonl(buf);

  ASSERT_NE(report.span("traffic_sim.run"), nullptr);
  ASSERT_NE(report.span("wormhole.run"), nullptr);
  EXPECT_GT(report.counter("wormhole.cycles"), 0);
  EXPECT_GT(report.counter("wormhole.flit_moves"), 0);
  EXPECT_EQ(report.counter("wormhole.worms_retired"),
            static_cast<std::int64_t>(result.delivered_packets));
  EXPECT_EQ(report.counter("traffic_sim.offered"),
            static_cast<std::int64_t>(result.offered_packets));
  EXPECT_EQ(report.counter("traffic_sim.delivered"),
            static_cast<std::int64_t>(result.delivered_packets));

  std::stringstream chrome;
  sink.write_chrome_trace(chrome);
  EXPECT_TRUE(json_valid(chrome.str()));
}

// The event kernel's clock-jump savings become a counter: two worms
// separated by a long quiescent gap make the kernel skip (and account)
// thousands of idle cycles the sweep kernel would execute one by one.
TEST(TraceReportTest, EventKernelReportsClockJumpSavings) {
  TraceSink sink;
  const mesh::Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);

  netsim::SimConfig config;
  config.num_vcs = 1;
  config.trace = {&sink, TraceLevel::Phase};
  netsim::WormholeSim sim(m, config);
  sim.submit(netsim::make_packet(router.route({0, 0}, {7, 7}), 1, 4, 0));
  sim.submit(netsim::make_packet(router.route({7, 0}, {0, 7}), 1, 4, 5000));
  const auto result = sim.run();

  EXPECT_EQ(result.delivered, 2u);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(sink.counter_value("wormhole.cycles"), result.cycles);
  EXPECT_EQ(sink.counter_value("wormhole.worms_retired"), 2);
  // The ~5000-cycle gap between the worms was jumped, not simulated.
  EXPECT_GT(sink.counter_value("wormhole.cycles_jumped"), 4000);
  EXPECT_EQ(sink.counter_value("wormhole.deadlocks"), 0);
}

#endif  // OCP_OBS_DISABLE

TEST(TraceReportTest, MalformedLinesAreCountedNotFatal) {
  std::stringstream buf;
  buf << "{\"ev\":\"meta\",\"schema\":\"ocpmesh-trace-v1\"}\n"
      << "this is not json\n"
      << "{\"ev\":\"e\",\"name\":\"s\",\"ts_ns\":5,\"dur_ns\":5}\n"
      << "{\"ev\":\"e\",\"name\":\"s\"}\n"          // missing dur_ns
      << "{\"ev\":\"c\",\"name\":\"k\",\"value\":3}\n"
      << "{\"ev\":\"??\",\"name\":\"x\",\"value\":1}\n"
      << "\n";
  const TraceReport report = summarize_jsonl(buf);
  EXPECT_EQ(report.schema, "ocpmesh-trace-v1");
  ASSERT_NE(report.span("s"), nullptr);
  EXPECT_EQ(report.span("s")->count, 1u);
  EXPECT_EQ(report.counter("k"), 3);
  EXPECT_EQ(report.malformed_lines, 3u);
}

TEST(TraceReportTest, EmptyInputYieldsEmptyReport) {
  std::stringstream buf;
  const TraceReport report = summarize_jsonl(buf);
  EXPECT_TRUE(report.spans.empty());
  EXPECT_TRUE(report.instants.empty());
  EXPECT_TRUE(report.counters.empty());
  EXPECT_EQ(report.malformed_lines, 0u);
}

TEST(TraceReportTest, ReportTablesCoverAllSections) {
  std::stringstream buf;
  buf << "{\"ev\":\"e\",\"name\":\"s\",\"ts_ns\":5,\"dur_ns\":1000000}\n"
      << "{\"ev\":\"i\",\"name\":\"f\",\"value\":9}\n"
      << "{\"ev\":\"c\",\"name\":\"k\",\"value\":3}\n";
  const TraceReport report = summarize_jsonl(buf);
  const auto tables = report_tables(report);
  ASSERT_EQ(tables.size(), 3u);

  std::stringstream out;
  print_report(report, out);
  EXPECT_NE(out.str().find("s"), std::string::npos);
  EXPECT_NE(out.str().find("k"), std::string::npos);
}

TEST(JsonValidTest, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("[1, 2.5, -3e4, 0.125]"));
  EXPECT_TRUE(json_valid(R"({"a": [true, false, null], "b": {"c": "d"}})"));
  EXPECT_TRUE(json_valid(R"("escapes: \" \\ \/ \b \f \n \r \t \u00ff")"));
  EXPECT_TRUE(json_valid("  {\n\t\"x\" : 0\r\n}  "));
}

TEST(JsonValidTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("[1 2]"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("01"));          // leading zero
  EXPECT_FALSE(json_valid("1."));          // bare decimal point
  EXPECT_FALSE(json_valid("-"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("\"bad \\x escape\""));
  EXPECT_FALSE(json_valid("\"bad \\u12g4\""));
  EXPECT_FALSE(json_valid("\"raw \x01 control\""));
  EXPECT_FALSE(json_valid("truth"));
  EXPECT_FALSE(json_valid("{'single': 1}"));
}

}  // namespace
}  // namespace ocp::obs
