#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ocp::obs {
namespace {

// Most expectations here require the recording path, which -DOCP_OBS=OFF
// compiles out; those tests are gated on OCP_OBS_DISABLE. The disabled-mode
// tests run in every configuration.

#ifndef OCP_OBS_DISABLE

TEST(TraceSinkTest, SpanNestingRecordsDepthsAndOrdering) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Round};
  {
    const Span outer(trace, "outer");
    {
      const Span inner(trace, "inner");
    }
    sink.instant("mark", 42);
  }

  const std::vector<Event> events = sink.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, EventKind::SpanBegin);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].kind, EventKind::SpanBegin);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].kind, EventKind::SpanEnd);
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 1u);  // depth of the span itself
  EXPECT_EQ(events[3].kind, EventKind::Instant);
  EXPECT_EQ(events[3].value, 42);
  EXPECT_EQ(events[3].depth, 1u);  // fired while "outer" was open
  EXPECT_EQ(events[4].kind, EventKind::SpanEnd);
  EXPECT_STREQ(events[4].name, "outer");
  EXPECT_EQ(events[4].depth, 0u);

  // Timestamps are monotone in record order and durations are consistent:
  // outer fully contains inner.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  EXPECT_GE(events[2].value, 0);              // inner duration
  EXPECT_GE(events[4].value, events[2].value);  // outer >= inner
}

TEST(TraceSinkTest, SpanEndWithoutBeginDoesNotCorruptTheStack) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Phase};
  sink.span_end("never_opened");  // instrumentation bug: still recorded
  {
    const Span s(trace, "real");
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::SpanEnd);
  EXPECT_EQ(events[0].value, 0);  // no matching begin: zero duration
  EXPECT_STREQ(events[1].name, "real");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[2].kind, EventKind::SpanEnd);
}

TEST(TraceSinkTest, SpanGateSuppressesRecording) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Phase};
  EXPECT_FALSE(trace.rounds());  // Phase level: no per-round detail
  {
    const Span s(trace, "round", trace.rounds());
  }
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSinkTest, ThreadsGetDistinctDenseTids) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Round};
  {
    const Span main_span(trace, "main");
    std::thread worker([&] { const Span s(trace, "worker"); });
    worker.join();
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  std::uint32_t main_tid = 0;
  std::uint32_t worker_tid = 0;
  for (const Event& e : events) {
    if (std::string_view(e.name) == "main") main_tid = e.tid;
    if (std::string_view(e.name) == "worker") worker_tid = e.tid;
  }
  EXPECT_NE(main_tid, worker_tid);
  EXPECT_LT(main_tid, 2u);  // dense ids, not hashes
  EXPECT_LT(worker_tid, 2u);
  // The worker's span does not see the main thread's open span as a parent.
  for (const Event& e : events) {
    if (std::string_view(e.name) == "worker") {
      EXPECT_EQ(e.depth, 0u);
    }
  }
}

TEST(TraceSinkTest, CountersAggregateAtomicallyAcrossThreads) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Phase};
  constexpr int kThreads = 8;
  constexpr int kAdds = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kAdds; ++i) {
        trace.counter("shared", 1);
        trace.counter(t % 2 == 0 ? "even" : "odd", 2);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(sink.counter_value("shared"), kThreads * kAdds);
  EXPECT_EQ(sink.counter_value("even"), kThreads / 2 * kAdds * 2);
  EXPECT_EQ(sink.counter_value("odd"), kThreads / 2 * kAdds * 2);
  EXPECT_EQ(sink.counter_value("absent"), 0);
}

#ifdef OCP_HAVE_OPENMP
TEST(TraceSinkTest, CountersAggregateAtomicallyUnderOpenMP) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Phase};
  constexpr int kIters = 20000;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) {
    trace.counter("omp.shared", 1);
  }
  EXPECT_EQ(sink.counter_value("omp.shared"), kIters);
}
#endif  // OCP_HAVE_OPENMP

TEST(TraceSinkTest, SpanDurationsFeedTheLatencyRecorder) {
  TraceSink sink;
  const TraceConfig trace{&sink, TraceLevel::Phase};
  for (int i = 0; i < 3; ++i) {
    const Span s(trace, "work");
  }
  const auto hists = sink.span_durations().snapshot();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "work");
  EXPECT_EQ(hists[0].second.count(), 3u);
}

TEST(TraceConfigTest, RoundsRequiresRoundLevel) {
  TraceSink sink;
  EXPECT_TRUE((TraceConfig{&sink, TraceLevel::Round}).rounds());
  EXPECT_FALSE((TraceConfig{&sink, TraceLevel::Phase}).rounds());
  EXPECT_TRUE((TraceConfig{&sink, TraceLevel::Phase}).enabled());
}

#endif  // OCP_OBS_DISABLE

TEST(TraceConfigTest, DefaultConfigIsDisabledAndAllHooksAreNoOps) {
  const TraceConfig trace;  // null sink
  EXPECT_FALSE(trace.enabled());
  EXPECT_FALSE(trace.rounds());
  // None of these may touch a sink (there is none to touch).
  trace.counter("x", 1);
  trace.instant("y", 2);
  {
    const Span s(trace, "z");
  }
}

TEST(TraceConfigTest, DisabledTraceLeavesAByStanderSinkUntouched) {
  TraceSink sink;
  const TraceConfig disabled;  // does NOT point at `sink`
  {
    const Span s(disabled, "ghost");
  }
  disabled.counter("ghost", 7);
  EXPECT_TRUE(sink.events().empty());
  EXPECT_TRUE(sink.counters().empty());
  EXPECT_EQ(sink.counter_value("ghost"), 0);
}

TEST(LatencyRecorderTest, RecordsPerNameHistogramsSortedByName) {
  LatencyRecorder recorder(0.0, 100.0, 10);
  recorder.record("b", 5.0);
  recorder.record("a", 15.0);
  recorder.record("b", 25.0);
  recorder.record("b", 1000.0);  // beyond hi: counts as overflow

  const auto hists = recorder.snapshot();
  ASSERT_EQ(hists.size(), 2u);
  EXPECT_EQ(hists[0].first, "a");
  EXPECT_EQ(hists[0].second.count(), 1u);
  EXPECT_EQ(hists[1].first, "b");
  EXPECT_EQ(hists[1].second.count(), 3u);
  EXPECT_EQ(hists[1].second.overflow(), 1u);
}

}  // namespace
}  // namespace ocp::obs
