// Placement strategies: policy behavior and the deterministic (y, x)
// tie-break every strategy must honor for replay identity.
#include "alloc/strategy.hpp"

#include <gtest/gtest.h>

#include "mesh/mesh2d.hpp"

namespace ocp::alloc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(StrategyTest, FactoryRoundTrips) {
  for (const auto kind : {StrategyKind::FirstFit, StrategyKind::BestFit,
                          StrategyKind::BoundaryFit}) {
    const auto s = make_strategy(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), kind);
    EXPECT_STREQ(s->name(), to_string(kind));
  }
}

TEST(StrategyTest, AllReturnNulloptWhenNothingFits) {
  // Blocking the two middle rows leaves only isolated single rows: no 2x2
  // anywhere.
  FreeRegionIndex idx(Mesh2D(4, 4));
  for (std::int32_t x = 0; x < 4; ++x) {
    idx.set_busy({x, 1}, true);
    idx.set_busy({x, 2}, true);
  }
  for (const auto kind : {StrategyKind::FirstFit, StrategyKind::BestFit,
                          StrategyKind::BoundaryFit}) {
    EXPECT_FALSE(make_strategy(kind)->choose(idx, 2, 2).has_value())
        << to_string(kind);
  }
}

TEST(StrategyTest, FirstFitTakesTheFirstRowMajorAnchor) {
  FreeRegionIndex idx(Mesh2D(6, 6));
  idx.set_busy({0, 0}, true);
  idx.set_busy({1, 0}, true);
  const auto s = make_strategy(StrategyKind::FirstFit);
  // Row 0 still admits a 2x2 at x=2 (rows 0-1 free from x=2 on).
  EXPECT_EQ(*s->choose(idx, 2, 2), (Coord{2, 0}));
  EXPECT_EQ(*s->choose(idx, 1, 1), (Coord{2, 0}));
  EXPECT_EQ(*s->choose(idx, 6, 5), (Coord{0, 1}));
}

TEST(StrategyTest, BestFitPrefersTheTightestHole) {
  // Row of busy cells splits the 8-wide strip into a 3-wide hole and a
  // 4-wide hole; a 3x2 job should take the exact-fit hole on the left.
  FreeRegionIndex idx(Mesh2D(8, 2));
  idx.set_busy({3, 0}, true);
  idx.set_busy({3, 1}, true);
  const auto s = make_strategy(StrategyKind::BestFit);
  EXPECT_EQ(*s->choose(idx, 3, 2), (Coord{0, 0}));
  // A 2x2 job scores 0 where the rightward extent exactly equals its width
  // — the right edge of either hole; (1, 0) wins the row-major tie-break
  // over (6, 0).
  EXPECT_EQ(*s->choose(idx, 2, 2), (Coord{1, 0}));
}

TEST(StrategyTest, BestFitScoreIsTheDocumentedSlackArea) {
  FreeRegionIndex idx(Mesh2D(8, 8));
  // Free everywhere: at (0,0) a 2x3 job leaves (8-2)*3 + (8-3)*2 slack.
  EXPECT_EQ(best_fit_score(idx, {0, 0}, 2, 3), 6 * 3 + 5 * 2);
  idx.set_busy({4, 0}, true);
  // Row extent at (0,0) is now 4: (4-2)*3 + (8-3)*2.
  EXPECT_EQ(best_fit_score(idx, {0, 0}, 2, 3), 2 * 3 + 5 * 2);
}

TEST(StrategyTest, BestFitTieBreaksRowMajor) {
  // Two identical 2-wide holes; the earlier anchor in (y, x) order wins.
  FreeRegionIndex idx(Mesh2D(8, 1));
  idx.set_busy({2, 0}, true);
  idx.set_busy({5, 0}, true);
  const auto s = make_strategy(StrategyKind::BestFit);
  EXPECT_EQ(*s->choose(idx, 2, 1), (Coord{0, 0}));
}

TEST(StrategyTest, BoundaryContactCountsCornersAndRing) {
  const FreeRegionIndex idx(Mesh2D(6, 6));
  // Machine corner: both outside neighbors of the rect's top-left corner
  // are off-machine, and two full sides of the ring are off-machine.
  const BoundaryContact corner = boundary_contact(idx, {0, 0}, 2, 2);
  EXPECT_EQ(corner.corners, 1);
  EXPECT_GT(corner.ring, 0);
  // Center: free on all sides.
  const BoundaryContact center = boundary_contact(idx, {2, 2}, 2, 2);
  EXPECT_EQ(center.corners, 0);
  EXPECT_EQ(center.ring, 0);
}

TEST(StrategyTest, BoundaryFitHugsExistingBusyBlocks) {
  FreeRegionIndex idx(Mesh2D(8, 8));
  // A busy 2x2 block in the interior; a 2x2 job should nestle into the
  // machine corner (max corner contact) rather than float in free space.
  for (const Coord c : {Coord{4, 4}, {5, 4}, {4, 5}, {5, 5}}) {
    idx.set_busy(c, true);
  }
  const auto s = make_strategy(StrategyKind::BoundaryFit);
  const Coord a = *s->choose(idx, 2, 2);
  const BoundaryContact got = boundary_contact(idx, a, 2, 2);
  const BoundaryContact center = boundary_contact(idx, {1, 1}, 2, 2);
  EXPECT_GT(got.corners, center.corners);
  // Deterministic winner: first row-major anchor among max-contact ones —
  // the machine's top-left corner.
  EXPECT_EQ(a, (Coord{0, 0}));
}

TEST(StrategyTest, ChoicesAreDeterministicAcrossRepeats) {
  FreeRegionIndex idx(Mesh2D(10, 10));
  for (const Coord c : {Coord{3, 3}, {7, 2}, {2, 7}, {5, 5}, {8, 8}}) {
    idx.set_busy(c, true);
  }
  for (const auto kind : {StrategyKind::FirstFit, StrategyKind::BestFit,
                          StrategyKind::BoundaryFit}) {
    const auto s = make_strategy(kind);
    const auto first = s->choose(idx, 3, 2);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(s->choose(idx, 3, 2), first);
  }
}

}  // namespace
}  // namespace ocp::alloc
