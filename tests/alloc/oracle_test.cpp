// Allocation oracle: seeded fuzz of the full engine+ingest loop on mesh and
// torus at 0-30% fault density (the ISSUE 10 acceptance band), plus
// negative tests proving each check actually fires on a violating pair.
#include "alloc/oracle.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "alloc/loadgen.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"
#include "svc/ingest.hpp"
#include "svc/loadgen.hpp"

namespace ocp::alloc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

TEST(AllocOracleTest, CleanEngineHasEmptyReport) {
  const Mesh2D m(8, 8);
  svc::IngestEngine ingest{grid::CellSet(m)};
  AllocEngine engine(*ingest.snapshot());
  const check::ViolationReport report =
      check_engine(engine, *ingest.snapshot());
  EXPECT_TRUE(report.ok());
}

TEST(AllocOracleTest, IndexCheckFiresOnAForeignSnapshot) {
  const Mesh2D m(8, 8);
  svc::IngestEngine clean{grid::CellSet(m)};
  svc::IngestEngine faulty{grid::CellSet{m, {{3, 3}}}};
  AllocEngine engine(*clean.snapshot());
  // The engine never observed the faulty snapshot's blocked plane: the
  // index-equivalence recompute must catch the drift.
  EXPECT_FALSE(
      check_engine(engine, *faulty.snapshot(), check::kAllocIndex).ok());
  // Masking the check out silences it (conservation still holds).
  EXPECT_TRUE(
      check_engine(engine, *faulty.snapshot(), check::kAllocConservation)
          .ok());
}

TEST(AllocOracleTest, OverlapAndEvictionChecksFireOnAJobOverAFault) {
  const Mesh2D m(8, 8);
  svc::IngestEngine clean{grid::CellSet(m)};
  svc::IngestEngine faulty{grid::CellSet{m, {{0, 0}}}};
  AllocEngine engine(*clean.snapshot());
  ASSERT_EQ(engine.submit({1, 2, 2, 0}).outcome, SubmitOutcome::Placed);
  // Against the snapshot where (0, 0) is faulty, the live job sits on a
  // blocked cell: both the overlap scan and eviction completeness fail.
  EXPECT_FALSE(
      check_engine(engine, *faulty.snapshot(), check::kAllocOverlap).ok());
  EXPECT_FALSE(
      check_engine(engine, *faulty.snapshot(), check::kAllocEviction).ok());
  // Against its own snapshot everything holds.
  EXPECT_TRUE(check_engine(engine, *clean.snapshot()).ok());
}

TEST(AllocOracleTest, CheckNamesRender) {
  EXPECT_STREQ(check::check_name(check::kAllocOverlap), "alloc-overlap");
  EXPECT_STREQ(check::check_name(check::kAllocIndex),
               "alloc-index-equivalence");
  EXPECT_STREQ(check::check_name(check::kAllocEviction),
               "alloc-eviction-completeness");
  EXPECT_STREQ(check::check_name(check::kAllocConservation),
               "alloc-conservation");
}

/// Seeded closed-loop fuzz: random submit/tick/release interleaved with
/// fault/repair churn through a real ingest loop; the oracle must hold
/// after every epoch and at quiesce.
void fuzz_one(Topology topology, double fault_fraction, std::uint64_t seed,
              StrategyKind strategy) {
  const Mesh2D m(12, 12, topology);
  stats::Rng master(seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const std::uint64_t job_seed = master.fork_seed();
  stats::Rng op_rng(master.fork_seed());

  const auto initial_count = static_cast<std::size_t>(
      fault_fraction * static_cast<double>(m.node_count()));
  const grid::CellSet initial =
      fault::uniform_random(m, initial_count, fault_rng);
  const auto stream =
      svc::generate_event_stream(m, initial, 48, 0.5, stream_seed);
  const auto jobs = generate_job_stream(m, 48, 5, 2, 10, job_seed);

  std::unique_ptr<AllocEngine> engine;
  svc::IngestConfig ingest_config;
  ingest_config.on_publish = [&engine](const svc::Snapshot& snap,
                                       std::span<const mesh::Coord> dirty) {
    if (engine) engine->observe_epoch(snap, dirty);
  };
  svc::IngestEngine ingest(initial, ingest_config);
  AllocConfig config;
  config.strategy = strategy;
  config.queue_capacity = 16;
  engine = std::make_unique<AllocEngine>(*ingest.snapshot(), config);

  std::size_t job_pos = 0;
  std::size_t stream_pos = 0;
  for (int step = 0; step < 120; ++step) {
    const std::int64_t roll = op_rng.uniform_int(0, 99);
    if (roll < 40 && job_pos < jobs.size()) {
      static_cast<void>(engine->submit(jobs[job_pos++]));
    } else if (roll < 70 && stream_pos < stream.size()) {
      const svc::FaultEvent e = stream[stream_pos++];
      static_cast<void>(
          ingest.apply(std::span<const svc::FaultEvent>(&e, 1)));
    } else if (roll < 90) {
      static_cast<void>(engine->tick());
    } else if (!engine->live().empty()) {
      static_cast<void>(engine->release(engine->live().begin()->first));
    }
    if (step % 10 == 0) {
      const auto report = check_engine(*engine, *ingest.snapshot());
      ASSERT_TRUE(report.ok())
          << "step " << step << " seed " << seed << ": "
          << report.to_string();
    }
  }
  const auto report = check_engine(*engine, *ingest.snapshot());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AllocOracleFuzzTest, MeshAcrossFaultDensities) {
  std::uint64_t seed = 100;
  for (const double fraction : {0.0, 0.1, 0.3}) {
    fuzz_one(Topology::Mesh, fraction, seed++, StrategyKind::FirstFit);
    fuzz_one(Topology::Mesh, fraction, seed++, StrategyKind::BestFit);
  }
}

TEST(AllocOracleFuzzTest, TorusAcrossFaultDensities) {
  std::uint64_t seed = 200;
  for (const double fraction : {0.0, 0.1, 0.3}) {
    fuzz_one(Topology::Torus, fraction, seed++, StrategyKind::BoundaryFit);
    fuzz_one(Topology::Torus, fraction, seed++, StrategyKind::FirstFit);
  }
}

}  // namespace
}  // namespace ocp::alloc
