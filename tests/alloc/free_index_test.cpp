// The incremental free-region index: left-run maintenance under single-cell
// flips, anchor enumeration against brute force, the largest-free-rectangle
// metric, and the cells_patched() work bound behind the O(dirty) claim.
#include "alloc/free_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.hpp"

namespace ocp::alloc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// Brute-force fit check: every cell of the w x h rect at `a` is free.
bool fits_brute(const FreeRegionIndex& idx, Coord a, std::int32_t w,
                std::int32_t h) {
  const Mesh2D& m = idx.machine();
  if (a.x < 0 || a.y < 0 || a.x + w > m.width() || a.y + h > m.height()) {
    return false;
  }
  for (std::int32_t y = a.y; y < a.y + h; ++y) {
    for (std::int32_t x = a.x; x < a.x + w; ++x) {
      if (idx.busy({x, y})) return false;
    }
  }
  return true;
}

std::vector<Coord> anchors_of(const FreeRegionIndex& idx, std::int32_t w,
                              std::int32_t h) {
  std::vector<Coord> out;
  idx.for_each_anchor(w, h, [&](Coord a) {
    out.push_back(a);
    return true;
  });
  return out;
}

TEST(FreeIndexTest, AllFreeBasics) {
  const Mesh2D m(8, 6);
  const FreeRegionIndex idx(m);
  EXPECT_EQ(idx.free_cells(), 48u);
  EXPECT_EQ(idx.cells_patched(), 0u);
  EXPECT_EQ(idx.run_at({0, 0}), 1);
  EXPECT_EQ(idx.run_at({7, 5}), 8);
  EXPECT_EQ(idx.largest_free_rect_area(), 48);
  ASSERT_TRUE(idx.first_anchor(8, 6).has_value());
  EXPECT_EQ(*idx.first_anchor(8, 6), (Coord{0, 0}));
  EXPECT_FALSE(idx.first_anchor(9, 1).has_value());
  EXPECT_FALSE(idx.first_anchor(1, 7).has_value());
}

TEST(FreeIndexTest, SetBusyPatchesRunsInRowOnly) {
  const Mesh2D m(8, 4);
  FreeRegionIndex idx(m);
  idx.set_busy({3, 1}, true);
  EXPECT_TRUE(idx.busy({3, 1}));
  EXPECT_EQ(idx.free_cells(), 31u);
  EXPECT_EQ(idx.run_at({3, 1}), 0);
  EXPECT_EQ(idx.run_at({2, 1}), 3);
  EXPECT_EQ(idx.run_at({4, 1}), 1);
  EXPECT_EQ(idx.run_at({7, 1}), 4);
  // Other rows untouched.
  EXPECT_EQ(idx.run_at({7, 0}), 8);
  EXPECT_EQ(idx.run_at({7, 2}), 8);
  // Flip back: runs restore.
  idx.set_busy({3, 1}, false);
  EXPECT_EQ(idx.run_at({7, 1}), 8);
  EXPECT_EQ(idx.free_cells(), 32u);
}

TEST(FreeIndexTest, SetBusyIsIdempotent) {
  FreeRegionIndex idx(Mesh2D(6, 6));
  idx.set_busy({2, 2}, true);
  const std::uint64_t patched = idx.cells_patched();
  idx.set_busy({2, 2}, true);  // no-op
  EXPECT_EQ(idx.cells_patched(), patched);
  EXPECT_EQ(idx.free_cells(), 35u);
}

TEST(FreeIndexTest, PatchStopsAtNextBusyCell) {
  const Mesh2D m(16, 2);
  FreeRegionIndex idx(m);
  idx.set_busy({10, 0}, true);
  const std::uint64_t before = idx.cells_patched();
  // Flipping x=2 must rewrite only x=2..9 (the run segment up to the busy
  // cell at x=10), not the rest of the row.
  idx.set_busy({2, 0}, true);
  EXPECT_EQ(idx.cells_patched() - before, 8u);
  EXPECT_EQ(idx.run_at({9, 0}), 7);
  EXPECT_EQ(idx.run_at({11, 0}), 1);
}

TEST(FreeIndexTest, IncrementalMatchesRebuildUnderRandomChurn) {
  const Mesh2D m(12, 9, mesh::Topology::Torus);
  FreeRegionIndex idx(m);
  std::vector<std::uint8_t> busy(12 * 9, 0);
  stats::Rng rng(20010423);
  for (int step = 0; step < 400; ++step) {
    const Coord c{static_cast<std::int32_t>(rng.uniform_int(0, 11)),
                  static_cast<std::int32_t>(rng.uniform_int(0, 8))};
    const bool to_busy = rng.bernoulli(0.55);
    idx.set_busy(c, to_busy);
    busy[static_cast<std::size_t>(c.y) * 12 + static_cast<std::size_t>(c.x)] =
        to_busy ? 1 : 0;
    if (step % 40 == 0) {
      const FreeRegionIndex rebuilt =
          FreeRegionIndex::build(m, [&](Coord q) {
            return busy[static_cast<std::size_t>(q.y) * 12 +
                        static_cast<std::size_t>(q.x)] != 0;
          });
      EXPECT_TRUE(idx.equivalent_to(rebuilt)) << "step " << step;
    }
  }
}

TEST(FreeIndexTest, AnchorsMatchBruteForce) {
  const Mesh2D m(10, 7);
  stats::Rng rng(7);
  FreeRegionIndex idx(m);
  for (int i = 0; i < 18; ++i) {
    idx.set_busy({static_cast<std::int32_t>(rng.uniform_int(0, 9)),
                  static_cast<std::int32_t>(rng.uniform_int(0, 6))},
                 true);
  }
  for (const auto& [w, h] : {std::pair{1, 1}, {2, 3}, {3, 2}, {4, 4}}) {
    std::vector<Coord> expected;
    for (std::int32_t y = 0; y < m.height(); ++y) {
      for (std::int32_t x = 0; x < m.width(); ++x) {
        if (fits_brute(idx, {x, y}, w, h)) expected.push_back({x, y});
      }
    }
    const std::vector<Coord> got = anchors_of(idx, w, h);
    EXPECT_EQ(got, expected) << w << "x" << h;
  }
}

TEST(FreeIndexTest, AnchorEnumerationStopsEarly) {
  const FreeRegionIndex idx(Mesh2D(6, 6));
  int seen = 0;
  idx.for_each_anchor(2, 2, [&](Coord) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(FreeIndexTest, LargestFreeRectMatchesBruteForce) {
  const Mesh2D m(9, 8);
  stats::Rng rng(99);
  FreeRegionIndex idx(m);
  for (int i = 0; i < 20; ++i) {
    idx.set_busy({static_cast<std::int32_t>(rng.uniform_int(0, 8)),
                  static_cast<std::int32_t>(rng.uniform_int(0, 7))},
                 true);
  }
  std::int64_t best = 0;
  for (std::int32_t h = 1; h <= m.height(); ++h) {
    for (std::int32_t w = 1; w <= m.width(); ++w) {
      if (!anchors_of(idx, w, h).empty()) {
        best = std::max<std::int64_t>(best,
                                      static_cast<std::int64_t>(w) * h);
      }
    }
  }
  EXPECT_EQ(idx.largest_free_rect_area(), best);
}

TEST(FreeIndexTest, ExtentsMeasureFreeSlabs) {
  FreeRegionIndex idx(Mesh2D(8, 8));
  idx.set_busy({5, 2}, true);
  idx.set_busy({2, 5}, true);
  EXPECT_EQ(idx.row_extent_right({0, 2}), 5);
  EXPECT_EQ(idx.row_extent_right({6, 2}), 2);
  EXPECT_EQ(idx.row_extent_right({5, 2}), 0);
  EXPECT_EQ(idx.col_extent_down({2, 0}), 5);
  EXPECT_EQ(idx.col_extent_down({2, 6}), 2);
  EXPECT_EQ(idx.col_extent_down({2, 5}), 0);
}

// The pin behind ISSUE 10's acceptance criterion, in deterministic units:
// on a 64x64 machine a single-fault epoch patches at most one row segment
// (<= 64 cells), >= 4x fewer cell writes than the 4096 a rebuild touches.
// The wall-clock twin lives in bench/alloc_load.
TEST(FreeIndexTest, SingleFaultEpochPatchesFarLessThanRebuild) {
  const Mesh2D m(64, 64);
  FreeRegionIndex idx(m);
  stats::Rng rng(5);
  const std::uint64_t rebuild_cost =
      static_cast<std::uint64_t>(m.node_count());
  for (int epoch = 0; epoch < 32; ++epoch) {
    const std::uint64_t before = idx.cells_patched();
    idx.set_busy({static_cast<std::int32_t>(rng.uniform_int(0, 63)),
                  static_cast<std::int32_t>(rng.uniform_int(0, 63))},
                 true);
    const std::uint64_t patched = idx.cells_patched() - before;
    EXPECT_LE(patched, 64u);
    EXPECT_GE(rebuild_cost, 4 * std::max<std::uint64_t>(patched, 1));
  }
}

}  // namespace
}  // namespace ocp::alloc
