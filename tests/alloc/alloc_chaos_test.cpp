// Chaos schedules against the allocation subsystem: a writer kill during an
// eviction storm must crash-recover and replay to the exact placement
// history of a kill-free run (ISSUE 10's convergence criterion).
#include "chaos/alloc_schedule.hpp"

#include <gtest/gtest.h>

namespace ocp::chaos {
namespace {

std::vector<AllocOp> hand_built_storm_kill() {
  // Load the machine, kill the writer while the storm's evictions land,
  // then churn and settle.
  return {
      {AllocOpKind::SubmitJobs, 20}, {AllocOpKind::Faults, 5},
      {AllocOpKind::Storm, 0},       {AllocOpKind::Kill, 0},
      {AllocOpKind::Faults, 8},      {AllocOpKind::Tick, 4},
      {AllocOpKind::SubmitJobs, 10}, {AllocOpKind::Release, 2},
      {AllocOpKind::Faults, 5},      {AllocOpKind::Tick, 4},
  };
}

TEST(AllocChaosTest, KillDuringEvictionStormConverges) {
  AllocScheduleConfig config;
  config.seed = 3;
  const AllocScheduleResult r =
      run_alloc_schedule(config, hand_built_storm_kill());
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_GE(r.kills, 1u);
  EXPECT_EQ(r.placement_digest, r.expected_placement_digest);
  EXPECT_EQ(r.final_label_digest, r.expected_label_digest);
  EXPECT_GT(r.epochs_published, 0u);
}

TEST(AllocChaosTest, KillFreeScheduleTriviallyConverges) {
  AllocScheduleConfig config;
  config.seed = 4;
  std::vector<AllocOp> schedule = hand_built_storm_kill();
  std::erase_if(schedule,
                [](const AllocOp& op) { return op.kind == AllocOpKind::Kill; });
  const AllocScheduleResult r = run_alloc_schedule(config, schedule);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.kills, 0u);
}

TEST(AllocChaosTest, GeneratedSchedulesAlwaysCoverTheStormKillCluster) {
  const auto schedule = generate_alloc_schedule(11, 20);
  bool cluster = false;
  for (std::size_t i = 0; i + 2 < schedule.size(); ++i) {
    cluster = cluster || (schedule[i].kind == AllocOpKind::Storm &&
                          schedule[i + 1].kind == AllocOpKind::Kill &&
                          schedule[i + 2].kind == AllocOpKind::Faults);
  }
  EXPECT_TRUE(cluster);
  // Seeded: same seed, same schedule; different seed, different schedule.
  EXPECT_EQ(generate_alloc_schedule(11, 20), schedule);
  EXPECT_NE(generate_alloc_schedule(12, 20), schedule);
}

TEST(AllocChaosTest, GeneratedSchedulesConvergeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    AllocScheduleConfig config;
    config.seed = seed;
    const auto schedule = generate_alloc_schedule(seed, 18, 8);
    const AllocScheduleResult r = run_alloc_schedule(config, schedule);
    EXPECT_TRUE(r.ok()) << "seed " << seed << " schedule "
                        << to_string(schedule) << ": "
                        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GE(r.kills, 1u) << "seed " << seed;
  }
}

TEST(AllocChaosTest, SchedulesRenderAsOneLineRepros) {
  const std::vector<AllocOp> schedule = {
      {AllocOpKind::SubmitJobs, 8}, {AllocOpKind::Faults, 4},
      {AllocOpKind::Storm, 0},      {AllocOpKind::Kill, 0},
      {AllocOpKind::Faults, 9},     {AllocOpKind::Tick, 4},
      {AllocOpKind::Release, 2},
  };
  EXPECT_EQ(to_string(schedule), "J8 F4 W K F9 T4 R2");
}

}  // namespace
}  // namespace ocp::chaos
