// Job lifecycle engine: admission, queue backfill, lifetime expiry,
// fault-driven eviction with bounded-retry recovery, and the replay-identity
// placement digest. Epoch turnover is driven the way production drives it:
// a private IngestEngine whose on_publish hook feeds (snapshot, dirty
// cells) into observe_epoch.
#include "alloc/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "alloc/oracle.hpp"
#include "svc/ingest.hpp"

namespace ocp::alloc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// An AllocEngine wired to its own ingest loop, the production topology.
struct Rig {
  std::unique_ptr<AllocEngine> engine;
  std::unique_ptr<svc::IngestEngine> ingest;

  explicit Rig(const Mesh2D& m, AllocConfig config = {}) {
    svc::IngestConfig ingest_config;
    ingest_config.on_publish = [this](const svc::Snapshot& snap,
                                      std::span<const mesh::Coord> dirty) {
      if (engine) engine->observe_epoch(snap, dirty);
    };
    ingest = std::make_unique<svc::IngestEngine>(grid::CellSet(m),
                                                 ingest_config);
    engine = std::make_unique<AllocEngine>(*ingest->snapshot(),
                                           std::move(config));
  }

  void fault(Coord c) {
    const svc::FaultEvent e[] = {{svc::EventKind::Fault, c}};
    static_cast<void>(ingest->apply(e));
  }
  void repair(Coord c) {
    const svc::FaultEvent e[] = {{svc::EventKind::Repair, c}};
    static_cast<void>(ingest->apply(e));
  }
  [[nodiscard]] bool oracle_ok() const {
    return check_engine(*engine, *ingest->snapshot()).ok();
  }
};

JobRequest job(std::uint64_t id, std::int32_t w, std::int32_t h,
               std::uint32_t lifetime = 0) {
  return {id, w, h, lifetime};
}

TEST(AllocEngineTest, PlacesFirstFitAtOrigin) {
  Rig rig(Mesh2D(8, 8));
  const SubmitResult r = rig.engine->submit(job(1, 3, 3));
  EXPECT_EQ(r.outcome, SubmitOutcome::Placed);
  EXPECT_EQ(r.rect, (geom::Rect{{0, 0}, {2, 2}}));
  EXPECT_EQ(rig.engine->occupant_at({1, 1}), 1u);
  EXPECT_FALSE(rig.engine->occupant_at({3, 3}).has_value());
  EXPECT_DOUBLE_EQ(rig.engine->utilization(), 9.0 / 64.0);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, RejectsBadDimensionsAndDuplicateIds) {
  Rig rig(Mesh2D(8, 8));
  EXPECT_EQ(rig.engine->submit(job(1, 0, 3)).outcome, SubmitOutcome::Rejected);
  EXPECT_EQ(rig.engine->submit(job(2, 9, 1)).outcome, SubmitOutcome::Rejected);
  EXPECT_EQ(rig.engine->submit(job(3, 2, 2)).outcome, SubmitOutcome::Placed);
  EXPECT_EQ(rig.engine->submit(job(3, 1, 1)).outcome, SubmitOutcome::Rejected);
  EXPECT_EQ(rig.engine->stats().rejected, 3u);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, FullQueueRejects) {
  AllocConfig config;
  config.queue_capacity = 1;
  Rig rig(Mesh2D(4, 4), config);
  EXPECT_EQ(rig.engine->submit(job(1, 4, 4)).outcome, SubmitOutcome::Placed);
  EXPECT_EQ(rig.engine->submit(job(2, 4, 4)).outcome, SubmitOutcome::Queued);
  EXPECT_EQ(rig.engine->submit(job(3, 1, 1)).outcome, SubmitOutcome::Rejected);
  EXPECT_EQ(rig.engine->stats().queued, 1u);
  EXPECT_EQ(rig.engine->stats().rejected, 1u);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, ReleaseDrainsTheQueue) {
  Rig rig(Mesh2D(6, 6));
  ASSERT_EQ(rig.engine->submit(job(1, 6, 6)).outcome, SubmitOutcome::Placed);
  ASSERT_EQ(rig.engine->submit(job(2, 2, 2)).outcome, SubmitOutcome::Queued);
  EXPECT_FALSE(rig.engine->release(99));
  EXPECT_TRUE(rig.engine->release(1));
  EXPECT_EQ(rig.engine->live().count(2), 1u);
  EXPECT_TRUE(rig.engine->pending().empty());
  EXPECT_EQ(rig.engine->stats().released, 1u);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, LifetimeExpiryCompletesJobs) {
  Rig rig(Mesh2D(6, 6));
  ASSERT_EQ(rig.engine->submit(job(1, 2, 2, 2)).outcome,
            SubmitOutcome::Placed);
  EXPECT_EQ(rig.engine->tick(), 0u);
  EXPECT_EQ(rig.engine->tick(), 1u);
  EXPECT_TRUE(rig.engine->live().empty());
  EXPECT_EQ(rig.engine->stats().completed, 1u);
  EXPECT_DOUBLE_EQ(rig.engine->utilization(), 0.0);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, EvictionReplacesWhenRoomExists) {
  Rig rig(Mesh2D(8, 8));
  ASSERT_EQ(rig.engine->submit(job(1, 2, 2)).outcome, SubmitOutcome::Placed);
  rig.fault({0, 0});  // inside the footprint
  EXPECT_EQ(rig.engine->stats().evicted, 1u);
  EXPECT_EQ(rig.engine->stats().replaced, 1u);
  ASSERT_EQ(rig.engine->live().count(1), 1u);
  const LiveJob& j = rig.engine->live().at(1);
  EXPECT_EQ(j.evictions, 1u);
  // The new footprint avoids every blocked cell.
  for (std::int32_t y = j.rect.lo.y; y <= j.rect.hi.y; ++y) {
    for (std::int32_t x = j.rect.lo.x; x <= j.rect.hi.x; ++x) {
      EXPECT_FALSE(rig.engine->blocked_at({x, y}));
    }
  }
  EXPECT_EQ(rig.engine->epoch(), rig.ingest->snapshot()->epoch());
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, EvictionRequeuesWithBackoffHoldThenRecovers) {
  Rig rig(Mesh2D(4, 4));
  ASSERT_EQ(rig.engine->submit(job(1, 4, 4)).outcome, SubmitOutcome::Placed);
  rig.fault({2, 2});
  // No 4x4 fits any more: evicted, re-queued at the head with a one-tick
  // eviction hold and a backoff-accounted delay.
  EXPECT_EQ(rig.engine->stats().evicted, 1u);
  EXPECT_EQ(rig.engine->stats().requeued, 1u);
  ASSERT_EQ(rig.engine->pending().size(), 1u);
  EXPECT_EQ(rig.engine->pending().front().not_before_tick, 1u);
  EXPECT_GT(rig.engine->stats().backoff_us, 0u);
  EXPECT_TRUE(rig.oracle_ok());
  // Repair the cell; the job is still held this tick, one tick later it
  // lands.
  rig.repair({2, 2});
  EXPECT_TRUE(rig.engine->live().empty());
  static_cast<void>(rig.engine->tick());
  EXPECT_EQ(rig.engine->live().count(1), 1u);
  EXPECT_TRUE(rig.engine->pending().empty());
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, ShedsAfterBoundedRetries) {
  AllocConfig config;
  config.max_retries = 0;
  Rig rig(Mesh2D(4, 4), config);
  ASSERT_EQ(rig.engine->submit(job(1, 4, 4)).outcome, SubmitOutcome::Placed);
  rig.fault({1, 1});
  EXPECT_EQ(rig.engine->stats().evicted, 1u);
  EXPECT_EQ(rig.engine->stats().shed, 1u);
  EXPECT_TRUE(rig.engine->live().empty());
  EXPECT_TRUE(rig.engine->pending().empty());
  // Conservation after a shed: submitted == shed.
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, QueueBackfillsPastABlockedHead) {
  Rig rig(Mesh2D(8, 8));
  ASSERT_EQ(rig.engine->submit(job(1, 8, 8)).outcome, SubmitOutcome::Placed);
  ASSERT_EQ(rig.engine->submit(job(2, 8, 8)).outcome, SubmitOutcome::Queued);
  ASSERT_EQ(rig.engine->submit(job(3, 1, 1)).outcome, SubmitOutcome::Queued);
  rig.fault({4, 4});
  // Job 1 is evicted and re-queued at the head (8x8 no longer fits); job 2
  // cannot fit either; job 3 must still land — a blocked head does not
  // starve it.
  EXPECT_EQ(rig.engine->live().count(3), 1u);
  EXPECT_EQ(rig.engine->pending().size(), 2u);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, RepairOpensSpaceForQueuedJobs) {
  Rig rig(Mesh2D(4, 4));
  rig.fault({0, 0});
  ASSERT_EQ(rig.engine->submit(job(1, 4, 4)).outcome, SubmitOutcome::Queued);
  rig.repair({0, 0});
  // The repair epoch's drain places the queued job without any tick.
  EXPECT_EQ(rig.engine->live().count(1), 1u);
  EXPECT_TRUE(rig.oracle_ok());
}

TEST(AllocEngineTest, PlacementDigestReplaysIdentically) {
  const auto drive = [](Rig& rig) {
    static_cast<void>(rig.engine->submit(job(1, 3, 2)));
    static_cast<void>(rig.engine->submit(job(2, 2, 2, 3)));
    rig.fault({1, 0});
    static_cast<void>(rig.engine->tick());
    static_cast<void>(rig.engine->release(1));
    static_cast<void>(rig.engine->tick());
  };
  Rig a(Mesh2D(8, 8));
  Rig b(Mesh2D(8, 8));
  drive(a);
  drive(b);
  EXPECT_EQ(a.engine->placement_digest(), b.engine->placement_digest());
  // A different interleaving is a different history.
  Rig c(Mesh2D(8, 8));
  static_cast<void>(c.engine->submit(job(2, 2, 2, 3)));
  static_cast<void>(c.engine->submit(job(1, 3, 2)));
  c.fault({1, 0});
  static_cast<void>(c.engine->tick());
  static_cast<void>(c.engine->release(1));
  static_cast<void>(c.engine->tick());
  EXPECT_NE(a.engine->placement_digest(), c.engine->placement_digest());
}

TEST(AllocEngineTest, ViewTracksEngineState) {
  Rig rig(Mesh2D(8, 8));
  const auto v0 = rig.engine->view();
  ASSERT_NE(v0, nullptr);
  EXPECT_EQ(v0->live, 0u);
  EXPECT_EQ(v0->free_cells, 64u);
  static_cast<void>(rig.engine->submit(job(1, 4, 4)));
  rig.fault({7, 7});
  static_cast<void>(rig.engine->tick());
  const auto v1 = rig.engine->view();
  EXPECT_EQ(v1->live, 1u);
  EXPECT_EQ(v1->tick, 1u);
  EXPECT_GE(v1->epoch, 1u);
  EXPECT_EQ(v1->submitted, 1u);
  EXPECT_EQ(v1->placement_digest, rig.engine->placement_digest());
  EXPECT_GT(v1->utilization, 0.0);
  EXPECT_GT(v1->fragmentation, 0.0);
  // The old handle is unchanged — RCU, not in-place mutation.
  EXPECT_EQ(v0->live, 0u);
}

TEST(AllocEngineTest, StrategiesProduceDifferentButValidPackings) {
  for (const auto kind : {StrategyKind::FirstFit, StrategyKind::BestFit,
                          StrategyKind::BoundaryFit}) {
    AllocConfig config;
    config.strategy = kind;
    Rig rig(Mesh2D(10, 10), config);
    for (std::uint64_t id = 1; id <= 12; ++id) {
      static_cast<void>(
          rig.engine->submit(job(id, 1 + static_cast<std::int32_t>(id % 3),
                                 1 + static_cast<std::int32_t>(id % 4))));
    }
    rig.fault({5, 5});
    static_cast<void>(rig.engine->tick());
    EXPECT_TRUE(rig.oracle_ok()) << to_string(kind);
  }
}

}  // namespace
}  // namespace ocp::alloc
