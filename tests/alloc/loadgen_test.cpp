// Closed-loop allocation load driver: replay identity across reader-thread
// counts (the 1/2/8 acceptance criterion), oracle and monotonicity
// invariants, and the seeded stream helpers.
#include "alloc/loadgen.hpp"

#include <gtest/gtest.h>

namespace ocp::alloc {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

AllocLoadConfig small_config() {
  AllocLoadConfig config;
  config.mesh_side = 16;
  config.jobs = 80;
  config.fault_events = 40;
  config.max_job_side = 5;
  config.storm_side = 4;
  config.reads_per_thread = 200;
  config.seed = 7;
  return config;
}

TEST(AllocLoadgenTest, JobStreamIsSeededAndBounded) {
  const Mesh2D m(16, 16);
  const auto a = generate_job_stream(m, 50, 6, 2, 9, 42);
  const auto b = generate_job_stream(m, 50, 6, 2, 9, 42);
  const auto c = generate_job_stream(m, 50, 6, 2, 9, 43);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(job_stream_digest(a), job_stream_digest(b));
  EXPECT_NE(job_stream_digest(a), job_stream_digest(c));
  std::uint64_t next_id = 1;
  for (const JobRequest& j : a) {
    EXPECT_EQ(j.id, next_id++);
    EXPECT_GE(j.width, 1);
    EXPECT_LE(j.width, 6);
    EXPECT_GE(j.height, 1);
    EXPECT_LE(j.height, 6);
    EXPECT_GE(j.lifetime_ticks, 2u);
    EXPECT_LE(j.lifetime_ticks, 9u);
  }
}

TEST(AllocLoadgenTest, StormBlockIsClampedInsideTheMachine) {
  const Mesh2D m(8, 8);
  const auto corner = storm_events(m, {0, 0}, 4);
  ASSERT_EQ(corner.size(), 16u);
  for (const svc::FaultEvent& e : corner) {
    EXPECT_TRUE(m.contains(e.node));
    EXPECT_EQ(e.kind, svc::EventKind::Fault);
  }
  EXPECT_EQ(corner.front().node, (Coord{0, 0}));
  // Oversized side clamps to the machine.
  EXPECT_EQ(storm_events(m, {4, 4}, 100).size(), 64u);
  EXPECT_TRUE(storm_events(m, {4, 4}, 0).empty());
}

TEST(AllocLoadgenTest, RunCompletesWithInvariantsHolding) {
  const AllocLoadResult r = run_alloc_load(small_config());
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_TRUE(r.views_monotone);
  EXPECT_TRUE(r.storm_recovered);
  EXPECT_GT(r.epochs_published, 0u);
  EXPECT_GT(r.stats.placed, 0u);
  EXPECT_GT(r.storm_evicted, 0u);
  EXPECT_EQ(r.stats.submitted, 80u);
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
  // At quiesce everything has drained, but the run must have carried load.
  EXPECT_GT(r.peak_utilization, 0.0);
  EXPECT_LE(r.peak_utilization, 1.0);
  EXPECT_GE(r.peak_utilization, r.utilization);
  EXPECT_GE(r.fragmentation_at_peak, 0.0);
  EXPECT_LE(r.fragmentation_at_peak, 1.0);
  EXPECT_GE(r.fragmentation, 0.0);
  EXPECT_LE(r.fragmentation, 1.0);
  EXPECT_GT(r.reader_views, 0u);
  // Conservation over the whole run.
  EXPECT_EQ(r.stats.submitted,
            r.live_final + r.pending_final + r.stats.completed +
                r.stats.released + r.stats.rejected + r.stats.shed);
}

// The acceptance criterion: replay-identity outputs are bit-identical at
// 1, 2 and 8 reader threads — readers observe, they never steer.
TEST(AllocLoadgenTest, ReplayDigestsAreReaderCountIndependent) {
  AllocLoadConfig config = small_config();
  config.reader_threads = 1;
  const AllocLoadResult one = run_alloc_load(config);
  config.reader_threads = 2;
  const AllocLoadResult two = run_alloc_load(config);
  config.reader_threads = 8;
  const AllocLoadResult eight = run_alloc_load(config);
  for (const AllocLoadResult* r : {&two, &eight}) {
    EXPECT_EQ(r->stream_digest, one.stream_digest);
    EXPECT_EQ(r->job_digest, one.job_digest);
    EXPECT_EQ(r->placement_digest, one.placement_digest);
    EXPECT_EQ(r->final_label_digest, one.final_label_digest);
    EXPECT_EQ(r->epochs_published, one.epochs_published);
    EXPECT_EQ(r->live_final, one.live_final);
    EXPECT_EQ(r->pending_final, one.pending_final);
    EXPECT_EQ(r->storm_evicted, one.storm_evicted);
    EXPECT_EQ(r->storm_recovery_ticks, one.storm_recovery_ticks);
    EXPECT_DOUBLE_EQ(r->utilization, one.utilization);
    EXPECT_DOUBLE_EQ(r->peak_utilization, one.peak_utilization);
    EXPECT_DOUBLE_EQ(r->fragmentation, one.fragmentation);
    EXPECT_DOUBLE_EQ(r->fragmentation_at_peak, one.fragmentation_at_peak);
    EXPECT_EQ(r->stats.placed, one.stats.placed);
    EXPECT_EQ(r->stats.evicted, one.stats.evicted);
    EXPECT_EQ(r->stats.requeued, one.stats.requeued);
    EXPECT_EQ(r->stats.shed, one.stats.shed);
    EXPECT_EQ(r->stats.backoff_us, one.stats.backoff_us);
  }
}

TEST(AllocLoadgenTest, DifferentSeedsDiverge) {
  AllocLoadConfig config = small_config();
  const AllocLoadResult a = run_alloc_load(config);
  config.seed = 8;
  const AllocLoadResult b = run_alloc_load(config);
  EXPECT_NE(a.placement_digest, b.placement_digest);
  EXPECT_NE(a.job_digest, b.job_digest);
}

TEST(AllocLoadgenTest, StrategiesShareStreamsButPlaceDifferently) {
  AllocLoadConfig config = small_config();
  config.strategy = StrategyKind::FirstFit;
  const AllocLoadResult first = run_alloc_load(config);
  config.strategy = StrategyKind::BestFit;
  const AllocLoadResult best = run_alloc_load(config);
  // Same seeded inputs...
  EXPECT_EQ(first.stream_digest, best.stream_digest);
  EXPECT_EQ(first.job_digest, best.job_digest);
  EXPECT_EQ(first.final_label_digest, best.final_label_digest);
  // ...different placement histories.
  EXPECT_NE(first.placement_digest, best.placement_digest);
  EXPECT_TRUE(best.oracle_ok);
}

}  // namespace
}  // namespace ocp::alloc
