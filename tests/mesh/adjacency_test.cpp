#include "mesh/adjacency.hpp"

#include <gtest/gtest.h>

namespace ocp::mesh {
namespace {

void expect_matches_mesh(const Mesh2D& m) {
  const AdjacencyTable adj(m);
  ASSERT_EQ(adj.node_count(), static_cast<std::size_t>(m.node_count()));

  std::uint64_t degree_sum = 0;
  for (std::size_t i = 0; i < adj.node_count(); ++i) {
    const Coord c = m.coord(i);
    std::int32_t expected_degree = 0;
    for (Dir d : kAllDirs) {
      const auto n = m.neighbor(c, d);
      const std::int32_t got = adj.neighbor_index(i, d);
      if (n) {
        ++expected_degree;
        EXPECT_EQ(got, static_cast<std::int32_t>(m.index(*n)))
            << m.describe() << " node " << i << " dir "
            << static_cast<int>(d);
      } else {
        EXPECT_EQ(got, AdjacencyTable::kGhost);
      }
    }
    EXPECT_EQ(adj.degree(i), expected_degree);
    degree_sum += static_cast<std::uint64_t>(expected_degree);

    // CSR slice lists exactly the physical neighbors, in kAllDirs order.
    const auto span = adj.physical_neighbors(i);
    ASSERT_EQ(span.size(), static_cast<std::size_t>(expected_degree));
    std::size_t k = 0;
    for (Dir d : kAllDirs) {
      if (const auto n = m.neighbor(c, d)) {
        EXPECT_EQ(span[k++], static_cast<std::int32_t>(m.index(*n)));
      }
    }
  }
  EXPECT_EQ(adj.total_degree(), degree_sum);
}

TEST(AdjacencyTableTest, MatchesMesh2DNeighborQueries) {
  expect_matches_mesh(Mesh2D(1, 1));
  expect_matches_mesh(Mesh2D(1, 7));
  expect_matches_mesh(Mesh2D(5, 4));
  expect_matches_mesh(Mesh2D(9, 9));
}

TEST(AdjacencyTableTest, MatchesTorusNeighborQueries) {
  expect_matches_mesh(Mesh2D(5, 4, Topology::Torus));
  expect_matches_mesh(Mesh2D(3, 3, Topology::Torus));
  expect_matches_mesh(Mesh2D(8, 2, Topology::Torus));
}

TEST(AdjacencyTableTest, TorusHasNoGhosts) {
  const Mesh2D m(6, 5, Topology::Torus);
  const AdjacencyTable adj(m);
  for (std::size_t i = 0; i < adj.node_count(); ++i) {
    EXPECT_EQ(adj.degree(i), 4);
    for (Dir d : kAllDirs) {
      EXPECT_NE(adj.neighbor_index(i, d), AdjacencyTable::kGhost);
    }
  }
  EXPECT_EQ(adj.total_degree(), 4u * 30u);
}

TEST(AdjacencyTableTest, MeshBoundaryDegrees) {
  // 3x3 mesh: 4 corners of degree 2, 4 edges of degree 3, 1 interior of 4.
  const Mesh2D m(3, 3);
  const AdjacencyTable adj(m);
  EXPECT_EQ(adj.total_degree(), 24u);
  EXPECT_EQ(adj.degree(m.index({0, 0})), 2);
  EXPECT_EQ(adj.degree(m.index({1, 0})), 3);
  EXPECT_EQ(adj.degree(m.index({1, 1})), 4);
}

}  // namespace
}  // namespace ocp::mesh
