#include "mesh/coord.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ocp::mesh {
namespace {

TEST(CoordTest, StepMovesOneInOneDimension) {
  const Coord c{3, 4};
  EXPECT_EQ(c.step(Dir::East), (Coord{4, 4}));
  EXPECT_EQ(c.step(Dir::West), (Coord{2, 4}));
  EXPECT_EQ(c.step(Dir::North), (Coord{3, 5}));
  EXPECT_EQ(c.step(Dir::South), (Coord{3, 3}));
}

TEST(CoordTest, StepThenOppositeIsIdentity) {
  const Coord c{7, -2};
  for (Dir d : kAllDirs) {
    EXPECT_EQ(c.step(d).step(opposite(d)), c) << to_string(d);
  }
}

TEST(CoordTest, DimOfClassifiesDirections) {
  EXPECT_EQ(dim_of(Dir::East), Dim::X);
  EXPECT_EQ(dim_of(Dir::West), Dim::X);
  EXPECT_EQ(dim_of(Dir::North), Dim::Y);
  EXPECT_EQ(dim_of(Dir::South), Dim::Y);
}

TEST(CoordTest, IndexOperatorSelectsComponent) {
  const Coord c{5, 9};
  EXPECT_EQ(c[Dim::X], 5);
  EXPECT_EQ(c[Dim::Y], 9);
}

TEST(CoordTest, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({1, 1}, {4, 5}), 7);
  EXPECT_EQ(manhattan({4, 5}, {1, 1}), 7);
  EXPECT_EQ(manhattan({-2, 3}, {2, -3}), 10);
}

TEST(CoordTest, AdjacencyIsDistanceOne) {
  EXPECT_TRUE(adjacent({2, 2}, {3, 2}));
  EXPECT_TRUE(adjacent({2, 2}, {2, 1}));
  EXPECT_FALSE(adjacent({2, 2}, {3, 3}));  // diagonal
  EXPECT_FALSE(adjacent({2, 2}, {2, 2}));  // self
  EXPECT_FALSE(adjacent({2, 2}, {4, 2}));
}

TEST(CoordTest, ArithmeticOperators) {
  EXPECT_EQ((Coord{1, 2} + Coord{3, 4}), (Coord{4, 6}));
  EXPECT_EQ((Coord{3, 4} - Coord{1, 2}), (Coord{2, 2}));
}

TEST(CoordTest, OrderingIsLexicographic) {
  EXPECT_LT((Coord{1, 5}), (Coord{2, 0}));
  EXPECT_LT((Coord{1, 2}), (Coord{1, 3}));
  EXPECT_EQ((Coord{1, 2}), (Coord{1, 2}));
}

TEST(CoordTest, HashDistinguishesNearbyCells) {
  std::unordered_set<Coord> set;
  for (int x = -10; x <= 10; ++x) {
    for (int y = -10; y <= 10; ++y) {
      set.insert({x, y});
    }
  }
  EXPECT_EQ(set.size(), 21u * 21u);
}

TEST(CoordTest, ToStringFormats) {
  EXPECT_EQ(to_string(Coord{3, -1}), "(3, -1)");
  EXPECT_STREQ(to_string(Dir::East), "E");
  EXPECT_STREQ(to_string(Dir::South), "S");
}

TEST(CoordTest, OppositeIsInvolution) {
  for (Dir d : kAllDirs) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
    EXPECT_EQ(dim_of(opposite(d)), dim_of(d));
  }
}

}  // namespace
}  // namespace ocp::mesh
