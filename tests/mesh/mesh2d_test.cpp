#include "mesh/mesh2d.hpp"

#include <gtest/gtest.h>

namespace ocp::mesh {
namespace {

TEST(Mesh2DTest, BasicProperties) {
  const Mesh2D m(5, 3);
  EXPECT_EQ(m.width(), 5);
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.node_count(), 15);
  EXPECT_FALSE(m.is_torus());
  EXPECT_EQ(m.describe(), "5x3 mesh");
}

TEST(Mesh2DTest, SquareFactory) {
  const Mesh2D m = Mesh2D::square(100);
  EXPECT_EQ(m.width(), 100);
  EXPECT_EQ(m.height(), 100);
  EXPECT_EQ(m.diameter(), 198);  // 2(n-1), paper section 2
}

TEST(Mesh2DTest, TorusDiameter) {
  EXPECT_EQ(Mesh2D::square(100, Topology::Torus).diameter(), 100);
  EXPECT_EQ(Mesh2D(8, 6, Topology::Torus).diameter(), 7);
}

TEST(Mesh2DTest, ContainsIsExact) {
  const Mesh2D m(4, 4);
  EXPECT_TRUE(m.contains({0, 0}));
  EXPECT_TRUE(m.contains({3, 3}));
  EXPECT_FALSE(m.contains({4, 0}));
  EXPECT_FALSE(m.contains({0, 4}));
  EXPECT_FALSE(m.contains({-1, 0}));
  EXPECT_FALSE(m.contains({0, -1}));
}

TEST(Mesh2DTest, IndexRoundTrips) {
  const Mesh2D m(7, 5);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    EXPECT_EQ(m.index(m.coord(i)), i);
  }
}

TEST(Mesh2DTest, InteriorNodeHasFourNeighbors) {
  const Mesh2D m(5, 5);
  const auto nbrs = m.neighbors({2, 2});
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Mesh2DTest, CornerNodeHasTwoNeighbors) {
  const Mesh2D m(5, 5);
  EXPECT_EQ(m.neighbors({0, 0}).size(), 2u);
  EXPECT_EQ(m.neighbors({4, 4}).size(), 2u);
  EXPECT_EQ(m.neighbors({4, 0}).size(), 2u);
  EXPECT_EQ(m.neighbors({0, 4}).size(), 2u);
}

TEST(Mesh2DTest, EdgeNodeHasThreeNeighbors) {
  const Mesh2D m(5, 5);
  EXPECT_EQ(m.neighbors({2, 0}).size(), 3u);
  EXPECT_EQ(m.neighbors({0, 2}).size(), 3u);
  EXPECT_EQ(m.neighbors({4, 2}).size(), 3u);
  EXPECT_EQ(m.neighbors({2, 4}).size(), 3u);
}

TEST(Mesh2DTest, TorusEveryNodeHasFourNeighbors) {
  const Mesh2D m(5, 5, Topology::Torus);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    EXPECT_EQ(m.neighbors(m.coord(i)).size(), 4u);
  }
}

TEST(Mesh2DTest, TorusWraparoundNeighbors) {
  const Mesh2D m(5, 5, Topology::Torus);
  EXPECT_EQ(m.neighbor({0, 0}, Dir::West), (Coord{4, 0}));
  EXPECT_EQ(m.neighbor({0, 0}, Dir::South), (Coord{0, 4}));
  EXPECT_EQ(m.neighbor({4, 4}, Dir::East), (Coord{0, 4}));
  EXPECT_EQ(m.neighbor({4, 4}, Dir::North), (Coord{4, 0}));
}

TEST(Mesh2DTest, MeshBoundaryNeighborIsNullopt) {
  const Mesh2D m(5, 5);
  EXPECT_FALSE(m.neighbor({0, 0}, Dir::West).has_value());
  EXPECT_FALSE(m.neighbor({0, 0}, Dir::South).has_value());
  EXPECT_TRUE(m.neighbor({0, 0}, Dir::East).has_value());
}

TEST(Mesh2DTest, GhostFrameIsOneCellWideMinusCorners) {
  const Mesh2D m(3, 3);
  EXPECT_TRUE(m.is_ghost({-1, 0}));
  EXPECT_TRUE(m.is_ghost({3, 2}));
  EXPECT_TRUE(m.is_ghost({1, -1}));
  EXPECT_TRUE(m.is_ghost({1, 3}));
  // Frame corners touch no mesh node.
  EXPECT_FALSE(m.is_ghost({-1, -1}));
  EXPECT_FALSE(m.is_ghost({3, 3}));
  // Interior and far-away cells are not ghosts.
  EXPECT_FALSE(m.is_ghost({1, 1}));
  EXPECT_FALSE(m.is_ghost({5, 0}));
}

TEST(Mesh2DTest, TorusHasNoGhosts) {
  const Mesh2D m(3, 3, Topology::Torus);
  EXPECT_FALSE(m.is_ghost({-1, 0}));
  EXPECT_FALSE(m.is_ghost({3, 2}));
}

TEST(Mesh2DTest, WrapNormalizesOnTorus) {
  const Mesh2D m(5, 4, Topology::Torus);
  EXPECT_EQ(m.wrap({-1, -1}), (Coord{4, 3}));
  EXPECT_EQ(m.wrap({5, 4}), (Coord{0, 0}));
  EXPECT_EQ(m.wrap({12, 9}), (Coord{2, 1}));
  EXPECT_EQ(m.wrap({2, 2}), (Coord{2, 2}));
}

TEST(Mesh2DTest, MeshDistanceIsManhattan) {
  const Mesh2D m(10, 10);
  EXPECT_EQ(m.distance({0, 0}, {9, 9}), 18);
  EXPECT_EQ(m.distance({3, 4}, {3, 4}), 0);
}

TEST(Mesh2DTest, TorusDistanceUsesWraparound) {
  const Mesh2D m(10, 10, Topology::Torus);
  EXPECT_EQ(m.distance({0, 0}, {9, 9}), 2);  // one wrap hop per dimension
  EXPECT_EQ(m.distance({0, 0}, {5, 5}), 10);
  EXPECT_EQ(m.distance({1, 0}, {8, 0}), 3);
}

TEST(Mesh2DTest, LinkedMatchesNeighborRelation) {
  const Mesh2D torus(6, 6, Topology::Torus);
  EXPECT_TRUE(torus.linked({0, 0}, {5, 0}));
  const Mesh2D mesh(6, 6);
  EXPECT_FALSE(mesh.linked({0, 0}, {5, 0}));
  EXPECT_TRUE(mesh.linked({0, 0}, {1, 0}));
}

TEST(Mesh2DTest, NeighborsAreAllLinked) {
  for (Topology t : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(6, 4, t);
    for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
         ++i) {
      const Coord c = m.coord(i);
      for (const Link& l : m.neighbors(c)) {
        EXPECT_TRUE(m.linked(c, l.to)) << m.describe();
        EXPECT_TRUE(m.contains(l.to));
      }
    }
  }
}

}  // namespace
}  // namespace ocp::mesh
