#include "grid/connectivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ocp::grid {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

TEST(ConnectivityTest, EmptySetHasNoComponents) {
  const CellSet s{Mesh2D(4, 4)};
  EXPECT_TRUE(connected_components(s).empty());
}

TEST(ConnectivityTest, SingleCellIsOneComponent) {
  const CellSet s{Mesh2D(4, 4), {{2, 2}}};
  const auto comps = connected_components(s);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].region.size(), 1u);
  EXPECT_TRUE(comps[0].region.contains({2, 2}));
}

TEST(ConnectivityTest, FourConnectivitySeparatesDiagonals) {
  const CellSet s{Mesh2D(4, 4), {{0, 0}, {1, 1}}};
  EXPECT_EQ(connected_components(s, Connectivity::Four).size(), 2u);
  EXPECT_EQ(connected_components(s, Connectivity::Eight).size(), 1u);
}

TEST(ConnectivityTest, LShapedComponentIsOnePiece) {
  const CellSet s{Mesh2D(5, 5), {{1, 1}, {1, 2}, {1, 3}, {2, 1}, {3, 1}}};
  const auto comps = connected_components(s);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].region.size(), 5u);
}

TEST(ConnectivityTest, TwoSeparateClusters) {
  const CellSet s{Mesh2D(8, 8), {{0, 0}, {1, 0}, {6, 6}, {6, 7}}};
  const auto comps = connected_components(s);
  ASSERT_EQ(comps.size(), 2u);
  // Deterministic row-major seed order: the (0,0) cluster comes first.
  EXPECT_TRUE(comps[0].region.contains({0, 0}));
  EXPECT_TRUE(comps[1].region.contains({6, 6}));
}

TEST(ConnectivityTest, MeshCellsEqualRegionCellsOnMesh) {
  const CellSet s{Mesh2D(6, 6), {{2, 2}, {3, 2}, {2, 3}}};
  const auto comps = connected_components(s);
  ASSERT_EQ(comps.size(), 1u);
  // On a mesh the physical addresses alias the region cells (no duplicate
  // vector is materialized).
  EXPECT_TRUE(comps[0].mesh_cells.empty());
  const auto region_cells = comps[0].region.cells();
  const auto phys_cells = comps[0].cells();
  ASSERT_EQ(phys_cells.size(), region_cells.size());
  for (std::size_t i = 0; i < region_cells.size(); ++i) {
    EXPECT_EQ(phys_cells[i], region_cells[i]);
  }
}

TEST(ConnectivityTest, TorusComponentCrossesWraparound) {
  const Mesh2D m(6, 6, Topology::Torus);
  // Cells straddling the x = 0 / x = 5 seam form one component on a torus.
  const CellSet s{m, {{5, 2}, {0, 2}, {1, 2}}};
  const auto comps = connected_components(s);
  ASSERT_EQ(comps.size(), 1u);
  // The unwrapped frame is one contiguous horizontal run of three cells.
  const auto& r = comps[0].region;
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.bounding_box().width(), 3);
  EXPECT_EQ(r.bounding_box().height(), 1);
}

TEST(ConnectivityTest, SameCellsOnMeshStaySplitAcrossSeam) {
  const Mesh2D m(6, 6, Topology::Mesh);
  const CellSet s{m, {{5, 2}, {0, 2}, {1, 2}}};
  EXPECT_EQ(connected_components(s).size(), 2u);
}

TEST(ConnectivityTest, TorusUnwrappedFrameMapsBackToMeshCells) {
  const Mesh2D m(5, 5, Topology::Torus);
  const CellSet s{m, {{4, 0}, {0, 0}, {4, 4}, {0, 4}}};  // 2x2 across corner
  const auto comps = connected_components(s, Connectivity::Four);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].region.size(), 4u);
  EXPECT_TRUE(comps[0].region.is_rectangle());
  // Every frame cell wraps back to a member of the original set; on a torus
  // the physical addresses are materialized separately from the frame.
  EXPECT_EQ(comps[0].mesh_cells.size(), comps[0].region.size());
  for (Coord cell : comps[0].cells()) {
    EXPECT_TRUE(s.contains(cell));
  }
}

TEST(ConnectivityTest, DoubleSeamComponentUnwrapsWithConsistentShift) {
  // A component spanning the x-seam AND the y-seam simultaneously: cells on
  // all four sides of the corner. The unwrapped frame must be one planar
  // translate of the component — (frame - mesh) is a single constant vector
  // modulo the machine dimensions for every cell, and the frame itself is
  // connected even though the mesh coordinates are split across both seams.
  const Mesh2D m(7, 6, Topology::Torus);
  const CellSet s{m, {{6, 5}, {0, 5}, {6, 0}, {0, 0}, {1, 0}, {6, 1}}};
  const auto comps = connected_components(s, Connectivity::Four);
  ASSERT_EQ(comps.size(), 1u);
  const auto& comp = comps[0];
  ASSERT_EQ(comp.region.size(), s.size());
  EXPECT_TRUE(comp.region.is_connected(geom::Connectivity::Four));
  EXPECT_FALSE(comp.region.is_rectangle());
  const auto frame = comp.region.cells();
  const auto cells = comp.cells();
  const auto wrap = [](std::int32_t v, std::int32_t n) {
    return ((v % n) + n) % n;
  };
  const std::int32_t dx = wrap(frame[0].x - cells[0].x, m.width());
  const std::int32_t dy = wrap(frame[0].y - cells[0].y, m.height());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(wrap(frame[i].x - cells[i].x, m.width()), dx)
        << "inconsistent x-shift at " << mesh::to_string(cells[i]);
    EXPECT_EQ(wrap(frame[i].y - cells[i].y, m.height()), dy)
        << "inconsistent y-shift at " << mesh::to_string(cells[i]);
    EXPECT_TRUE(s.contains(cells[i]));
  }
}

TEST(ConnectivityTest, ComponentRegionsConvenienceMatches) {
  const CellSet s{Mesh2D(8, 8), {{0, 0}, {1, 0}, {5, 5}}};
  const auto comps = connected_components(s);
  const auto regions = component_regions(s);
  ASSERT_EQ(comps.size(), regions.size());
  for (std::size_t i = 0; i < comps.size(); ++i) {
    EXPECT_EQ(comps[i].region, regions[i]);
  }
}

TEST(ConnectivityTest, ComponentSizesSumToSetSize) {
  const CellSet s{Mesh2D(10, 10),
                  {{1, 1}, {1, 2}, {4, 4}, {9, 9}, {9, 8}, {8, 8}, {0, 9}}};
  std::size_t total = 0;
  for (const auto& comp : connected_components(s)) {
    total += comp.region.size();
  }
  EXPECT_EQ(total, s.size());
}

}  // namespace
}  // namespace ocp::grid
