#include "grid/cell_set.hpp"

#include <gtest/gtest.h>

namespace ocp::grid {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(CellSetTest, StartsEmpty) {
  const CellSet s{Mesh2D(4, 4)};
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains({0, 0}));
}

TEST(CellSetTest, InsertEraseContains) {
  CellSet s{Mesh2D(4, 4)};
  s.insert({1, 2});
  EXPECT_TRUE(s.contains({1, 2}));
  EXPECT_EQ(s.size(), 1u);
  s.insert({1, 2});  // idempotent
  EXPECT_EQ(s.size(), 1u);
  s.erase({1, 2});
  EXPECT_FALSE(s.contains({1, 2}));
  EXPECT_TRUE(s.empty());
  s.erase({1, 2});  // idempotent
  EXPECT_EQ(s.size(), 0u);
}

TEST(CellSetTest, InitializerListConstructor) {
  const CellSet s{Mesh2D(5, 5), {{0, 0}, {2, 3}, {4, 4}}};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains({2, 3}));
  EXPECT_FALSE(s.contains({3, 2}));
}

TEST(CellSetTest, OutOfMeshIsNeverMember) {
  const CellSet s{Mesh2D(3, 3), {{0, 0}}};
  EXPECT_FALSE(s.contains({-1, 0}));
  EXPECT_FALSE(s.contains({3, 0}));
}

TEST(CellSetTest, ToVectorIsRowMajor) {
  const CellSet s{Mesh2D(4, 4), {{3, 2}, {0, 0}, {1, 0}, {2, 1}}};
  const std::vector<Coord> expected = {{0, 0}, {1, 0}, {2, 1}, {3, 2}};
  EXPECT_EQ(s.to_vector(), expected);
}

TEST(CellSetTest, ForEachVisitsEveryMemberOnce) {
  const CellSet s{Mesh2D(6, 6), {{1, 1}, {5, 0}, {0, 5}}};
  std::size_t visits = 0;
  s.for_each([&](Coord c) {
    EXPECT_TRUE(s.contains(c));
    ++visits;
  });
  EXPECT_EQ(visits, 3u);
}

TEST(CellSetTest, UnionDifferenceIntersection) {
  const Mesh2D m(4, 4);
  CellSet a{m, {{0, 0}, {1, 1}}};
  const CellSet b{m, {{1, 1}, {2, 2}}};

  CellSet u = a;
  u |= b;
  EXPECT_EQ(u.size(), 3u);
  EXPECT_TRUE(u.contains({0, 0}));
  EXPECT_TRUE(u.contains({2, 2}));

  CellSet d = a;
  d -= b;
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.contains({0, 0}));
  EXPECT_FALSE(d.contains({1, 1}));

  CellSet i = a;
  i &= b;
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.contains({1, 1}));
}

TEST(CellSetTest, ClearResets) {
  CellSet s{Mesh2D(4, 4), {{0, 0}, {3, 3}}};
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains({0, 0}));
}

TEST(CellSetTest, EqualityIsValueBased) {
  const Mesh2D m(4, 4);
  const CellSet a{m, {{1, 2}}};
  const CellSet b{m, {{1, 2}}};
  const CellSet c{m, {{2, 1}}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ocp::grid
