#include "grid/node_grid.hpp"

#include <gtest/gtest.h>

namespace ocp::grid {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(NodeGridTest, InitializesWithDefault) {
  const Mesh2D m(4, 3);
  const NodeGrid<int> g(m, 7);
  EXPECT_EQ(g.size(), 12u);
  for (int v : g) EXPECT_EQ(v, 7);
}

TEST(NodeGridTest, CoordinateAccess) {
  const Mesh2D m(4, 3);
  NodeGrid<int> g(m);
  g[{2, 1}] = 42;
  EXPECT_EQ((g[{2, 1}]), 42);
  EXPECT_EQ((g[{1, 2}]), 0);
}

TEST(NodeGridTest, IndexAccessMatchesCoordAccess) {
  const Mesh2D m(5, 5);
  NodeGrid<int> g(m);
  g[{3, 2}] = 9;
  EXPECT_EQ(g.at_index(m.index({3, 2})), 9);
}

TEST(NodeGridTest, FillOverwritesEverything) {
  const Mesh2D m(3, 3);
  NodeGrid<int> g(m, 1);
  g.fill(5);
  for (int v : g) EXPECT_EQ(v, 5);
}

TEST(NodeGridTest, EqualityIsValueBased) {
  const Mesh2D m(3, 3);
  NodeGrid<int> a(m, 1);
  NodeGrid<int> b(m, 1);
  EXPECT_EQ(a, b);
  b[{0, 0}] = 2;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ocp::grid
