// Delta-debugging shrinker tests: local minimality, determinism, trace
// round-trips.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/shrink.hpp"
#include "fault/generators.hpp"
#include "fault/trace.hpp"
#include "stats/rng.hpp"

namespace ocp::check {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// Checks the shrinker's contract: the result still fails, and removing any
/// single remaining fault makes the predicate pass.
void expect_local_minimal(const grid::CellSet& shrunk,
                          const FailurePredicate& fails) {
  EXPECT_TRUE(fails(shrunk));
  for (const Coord c : shrunk.to_vector()) {
    grid::CellSet candidate = shrunk;
    candidate.erase(c);
    EXPECT_FALSE(fails(candidate))
        << "removing " << mesh::to_string(c) << " still fails";
  }
}

TEST(ShrinkTest, ReducesToThePlantedCore) {
  const Mesh2D m(16, 16);
  grid::CellSet faults(m);
  // The failure needs exactly the pair {(3,3),(12,12)}; everything else is
  // noise the shrinker must strip.
  stats::Rng rng(41);
  for (int i = 0; i < 30; ++i) {
    faults.insert({static_cast<std::int32_t>(rng.uniform_int(0, 15)),
                   static_cast<std::int32_t>(rng.uniform_int(0, 15))});
  }
  faults.insert({3, 3});
  faults.insert({12, 12});
  const FailurePredicate needs_pair = [](const grid::CellSet& s) {
    return s.contains({3, 3}) && s.contains({12, 12});
  };
  const auto result = shrink_faults(faults, needs_pair);
  EXPECT_EQ(result.faults.size(), 2u);
  EXPECT_TRUE(result.faults.contains({3, 3}));
  EXPECT_TRUE(result.faults.contains({12, 12}));
  expect_local_minimal(result.faults, needs_pair);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(ShrinkTest, CardinalityPredicateShrinksToThreshold) {
  const Mesh2D m(10, 10);
  stats::Rng rng(8);
  const auto faults = fault::uniform_random(m, 40, rng);
  const FailurePredicate at_least_five = [](const grid::CellSet& s) {
    return s.size() >= 5;
  };
  const auto result = shrink_faults(faults, at_least_five);
  EXPECT_EQ(result.faults.size(), 5u);
  expect_local_minimal(result.faults, at_least_five);
}

TEST(ShrinkTest, SingleFaultCoreSurvives) {
  const Mesh2D m(9, 9);
  stats::Rng rng(2);
  auto faults = fault::uniform_random(m, 20, rng);
  faults.insert({4, 4});
  const FailurePredicate needs_center = [](const grid::CellSet& s) {
    return s.contains({4, 4});
  };
  const auto result = shrink_faults(faults, needs_center);
  EXPECT_EQ(result.faults.size(), 1u);
  EXPECT_TRUE(result.faults.contains({4, 4}));
}

TEST(ShrinkTest, ThrowsWhenInputDoesNotFail) {
  const Mesh2D m(6, 6);
  grid::CellSet faults(m);
  faults.insert({1, 1});
  EXPECT_THROW(
      (void)shrink_faults(faults,
                          [](const grid::CellSet&) { return false; }),
      std::invalid_argument);
}

TEST(ShrinkTest, DeterministicAcrossRuns) {
  const Mesh2D m(12, 12);
  stats::Rng rng(77);
  const auto faults = fault::uniform_random(m, 25, rng);
  // Non-monotone predicate with several minimal sets: determinism matters.
  const FailurePredicate odd_row_pair = [](const grid::CellSet& s) {
    std::size_t odd = 0;
    s.for_each([&](Coord c) { odd += static_cast<std::size_t>(c.y % 2); });
    return odd >= 2;
  };
  const auto a = shrink_faults(faults, odd_row_pair);
  const auto b = shrink_faults(faults, odd_row_pair);
  EXPECT_TRUE(a.faults == b.faults);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ShrinkTest, TraceRoundTripsThroughFaultTrace) {
  const Mesh2D m(8, 8, mesh::Topology::Torus);
  grid::CellSet faults(m);
  faults.insert({0, 0});
  faults.insert({7, 7});
  faults.insert({3, 4});
  const auto result = shrink_faults(
      faults, [](const grid::CellSet& s) { return s.size() >= 2; });
  const auto reloaded = fault::from_trace_string(result.trace);
  EXPECT_TRUE(reloaded == result.faults);
  EXPECT_TRUE(reloaded.topology().is_torus());
}

TEST(ShrinkTest, ReproCommandNamesTheBinaryAndTrace) {
  const auto cmd = repro_command("fail.trace", "2a");
  EXPECT_NE(cmd.find("check_fuzz"), std::string::npos);
  EXPECT_NE(cmd.find("--replay fail.trace"), std::string::npos);
  EXPECT_NE(cmd.find("--def 2a"), std::string::npos);
}

}  // namespace
}  // namespace ocp::check
