// Metamorphic layer tests: the transforms are genuine lattice symmetries
// (bijective, adjacency-preserving) and the pipeline commutes with them.
#include <gtest/gtest.h>

#include <set>

#include "check/metamorphic.hpp"
#include "fault/fixtures.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::check {
namespace {

using labeling::PipelineOptions;
using labeling::SafeUnsafeDef;
using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

TEST(MetamorphicTest, TransformsAreBijections) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(7, 5, topology);
    for (const Transform& t : symmetry_transforms(m)) {
      std::set<std::pair<std::int32_t, std::int32_t>> images;
      for (std::int32_t y = 0; y < m.height(); ++y) {
        for (std::int32_t x = 0; x < m.width(); ++x) {
          const Coord im = t.map({x, y});
          EXPECT_TRUE(t.codomain.contains(im))
              << t.name() << " maps (" << x << "," << y << ") outside";
          images.insert({im.x, im.y});
        }
      }
      EXPECT_EQ(images.size(), static_cast<std::size_t>(m.node_count()))
          << t.name() << " is not injective";
    }
  }
}

TEST(MetamorphicTest, TransformsPreserveAdjacency) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(6, 9, topology);
    for (const Transform& t : symmetry_transforms(m)) {
      for (std::int32_t y = 0; y < m.height(); ++y) {
        for (std::int32_t x = 0; x < m.width(); ++x) {
          const Coord u{x, y};
          for (mesh::Dir d : mesh::kAllDirs) {
            const auto v = m.neighbor(u, d);
            if (!v) continue;  // ghost; the frame maps onto itself
            EXPECT_EQ(t.codomain.distance(t.map(u), t.map(*v)), 1)
                << t.name() << " breaks the link " << mesh::to_string(u)
                << " -> " << mesh::to_string(*v);
          }
        }
      }
    }
  }
}

TEST(MetamorphicTest, TorusGetsTranslations) {
  const Mesh2D mesh(8, 8, Topology::Mesh);
  const Mesh2D torus(8, 8, Topology::Torus);
  std::size_t mesh_translations = 0;
  for (const auto& t : symmetry_transforms(mesh)) {
    mesh_translations += t.kind == Transform::Kind::Translate;
  }
  std::size_t torus_translations = 0;
  for (const auto& t : symmetry_transforms(torus)) {
    torus_translations += t.kind == Transform::Kind::Translate;
  }
  EXPECT_EQ(mesh_translations, 0u);
  EXPECT_GT(torus_translations, 0u);
}

TEST(MetamorphicTest, TransformFaultsPreservesCardinality) {
  const Mesh2D m(9, 4, Topology::Torus);
  stats::Rng rng(5);
  const auto faults = fault::uniform_random(m, 7, rng);
  for (const Transform& t : symmetry_transforms(m)) {
    const auto image = transform_faults(t, faults);
    EXPECT_EQ(image.size(), faults.size()) << t.name();
  }
}

TEST(MetamorphicTest, PipelineCommutesOnFixtures) {
  for (const auto& fixture :
       {fault::worked_example(), fault::figure1(), fault::figure2b()}) {
    for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
      PipelineOptions popts;
      popts.definition = def;
      const auto report = check_metamorphic(fixture.faults, popts);
      EXPECT_TRUE(report.ok()) << fixture.name << " " << to_string(def)
                               << "\n"
                               << report.to_string();
    }
  }
}

TEST(MetamorphicTest, PipelineCommutesOnRandomInstances) {
  stats::Rng master(23);
  for (int k = 0; k < 24; ++k) {
    stats::Rng rng(master.fork_seed());
    const Mesh2D m(static_cast<std::int32_t>(rng.uniform_int(3, 14)),
                   static_cast<std::int32_t>(rng.uniform_int(3, 14)),
                   k % 2 == 0 ? Topology::Mesh : Topology::Torus);
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(0, std::max<std::int64_t>(1, m.node_count() / 5)));
    const auto faults = fault::uniform_random(m, f, rng);
    PipelineOptions popts;
    popts.definition =
        k % 4 < 2 ? SafeUnsafeDef::Def2a : SafeUnsafeDef::Def2b;
    const auto report = check_metamorphic(faults, popts);
    EXPECT_TRUE(report.ok()) << m.describe() << "\n" << report.to_string();
  }
}

TEST(MetamorphicTest, TransformsActuallyMoveAsymmetricSets) {
  // Guards against identity-transform bugs: an asymmetric fault set must be
  // displaced by every non-trivial symmetry, otherwise the layer compares a
  // run against itself and can never fail.
  const Mesh2D m(8, 8, Topology::Mesh);
  grid::CellSet faults(m);
  faults.insert({0, 1});
  faults.insert({1, 3});
  faults.insert({5, 2});
  for (const Transform& t : symmetry_transforms(m)) {
    const auto image = transform_faults(t, faults);
    EXPECT_FALSE(image == faults) << t.name() << " fixes an asymmetric set";
  }
}

}  // namespace
}  // namespace ocp::check
