// Mutation smoke tests: deliberately broken protocol variants must be caught
// by the InvariantOracle (proving the verification subsystem has teeth), and
// the shrinker must reduce a mutant-induced failure to a replayable,
// local-minimal counterexample.
#include <gtest/gtest.h>

#include "check/mutants.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "core/reference.hpp"
#include "fault/generators.hpp"
#include "fault/trace.hpp"
#include "stats/rng.hpp"

namespace ocp::check {
namespace {

using labeling::SafeUnsafeDef;
using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

OracleOptions oracle_options(SafeUnsafeDef def) {
  OracleOptions opts;
  opts.definition = def;
  opts.round_bound = RoundBound::ProgressOnly;
  return opts;
}

bool contains_check(const ViolationReport& report, std::uint32_t check) {
  for (const auto& v : report.violations) {
    if (v.check == check) return true;
  }
  return false;
}

TEST(MutationTest, ActivationThresholdOneCaughtOnConcavePattern) {
  // Threshold >= 1 re-enables pocket cells that genuine Definition 3 keeps
  // disabled, leaving a concave disabled region.
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  for (Coord c : {Coord{6, 0}, {4, 1}, {1, 2}, {3, 2}, {2, 3}, {4, 4}}) {
    faults.insert(c);
  }
  const auto mutant = run_mutant_pipeline(
      faults, Mutant::ActivationThresholdOne, SafeUnsafeDef::Def2b);
  const auto report =
      check_pipeline(faults, mutant, oracle_options(SafeUnsafeDef::Def2b));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(contains_check(report, kTheorem1)) << report.to_string();
}

TEST(MutationTest, ActivationGhostDisabledCaughtOnBoundaryDiagonal) {
  // Without enabled ghost support the boundary pocket of a diagonal fault
  // pair stays disabled: the region grows past the convex closure and gains
  // nonfaulty corners.
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  faults.insert({0, 0});
  faults.insert({1, 1});
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    const auto mutant =
        run_mutant_pipeline(faults, Mutant::ActivationGhostDisabled, def);
    const auto report = check_pipeline(faults, mutant, oracle_options(def));
    ASSERT_FALSE(report.ok()) << to_string(def);
    EXPECT_TRUE(contains_check(report, kLemma1)) << report.to_string();
    EXPECT_TRUE(contains_check(report, kTheorem2)) << report.to_string();
    EXPECT_TRUE(contains_check(report, kFixpoint)) << report.to_string();
  }
}

TEST(MutationTest, SafetyGhostUnsafeCaughtByBlockFaultContent) {
  // Unsafe ghosts sweep the whole mesh unsafe from the boundary; the single
  // resulting block dwarfs the bounding box of its one fault.
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  faults.insert({3, 3});
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    const auto mutant =
        run_mutant_pipeline(faults, Mutant::SafetyGhostUnsafe, def);
    const auto report = check_pipeline(faults, mutant, oracle_options(def));
    ASSERT_FALSE(report.ok()) << to_string(def);
    EXPECT_TRUE(contains_check(report, kBlockFaultContent))
        << report.to_string();
  }
}

TEST(MutationTest, SafetyThresholdOneCaughtByBlockFaultContent) {
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  faults.insert({3, 3});
  const auto mutant = run_mutant_pipeline(faults, Mutant::SafetyThresholdOne,
                                          SafeUnsafeDef::Def2a);
  const auto report =
      check_pipeline(faults, mutant, oracle_options(SafeUnsafeDef::Def2a));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(contains_check(report, kBlockFaultContent))
      << report.to_string();
}

TEST(MutationTest, TorusCascadeNeedsEngineCrossCheck) {
  // On a torus a threshold-one cascade labels the whole machine unsafe —
  // a valid (but non-least) fixpoint of Definition 2a, so the pure oracle
  // accepts it; only independent recomputation of the least fixpoint (the
  // fuzzer's engine cross-validation layer) exposes the mutant. This test
  // documents that boundary of the oracle's power.
  const Mesh2D m(8, 8, Topology::Torus);
  grid::CellSet faults(m);
  faults.insert({3, 3});
  const auto mutant = run_mutant_pipeline(faults, Mutant::SafetyThresholdOne,
                                          SafeUnsafeDef::Def2a);
  const auto report =
      check_pipeline(faults, mutant, oracle_options(SafeUnsafeDef::Def2a));
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto reference =
      labeling::reference_safety(faults, SafeUnsafeDef::Def2a);
  EXPECT_FALSE(mutant.safety == reference);
}

TEST(MutationTest, GhostMutantsAreNoOpsOnTori) {
  // Tori have no ghost frame, so ghost mutants cannot change the labeling —
  // a sanity check that the mutants break exactly what they claim to break.
  const Mesh2D m(10, 6, Topology::Torus);
  stats::Rng rng(19);
  const auto faults = fault::uniform_random(m, 8, rng);
  const auto genuine = labeling::run_pipeline(faults);
  for (Mutant mut :
       {Mutant::ActivationGhostDisabled, Mutant::SafetyGhostUnsafe}) {
    const auto mutant = run_mutant_pipeline(faults, mut);
    EXPECT_TRUE(mutant.safety == genuine.safety) << to_string(mut);
    EXPECT_TRUE(mutant.activation == genuine.activation) << to_string(mut);
  }
}

TEST(MutationTest, OracleCatchesMostDivergentMutantsOnMeshes) {
  // Fuzzed sweep on meshes: the pure oracle (no reference recomputation)
  // must flag the large majority of instances where a mutant labeling
  // differs from the genuine one. The residue — valid-but-non-least
  // fixpoints — is covered by the fuzzer's engine cross-validation layer,
  // whose detection is the divergence itself.
  stats::Rng master(99);
  std::size_t divergent = 0;
  std::size_t caught = 0;
  for (int k = 0; k < 40; ++k) {
    stats::Rng rng(master.fork_seed());
    const Mesh2D m(static_cast<std::int32_t>(rng.uniform_int(4, 12)),
                   static_cast<std::int32_t>(rng.uniform_int(4, 12)));
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(1, std::max<std::int64_t>(1, m.node_count() / 6)));
    const auto faults = fault::uniform_random(m, f, rng);
    const auto def = k % 4 < 2 ? SafeUnsafeDef::Def2a : SafeUnsafeDef::Def2b;
    labeling::PipelineOptions popts;
    popts.definition = def;
    const auto genuine = labeling::run_pipeline(faults, popts);
    for (Mutant mut : kAllMutants) {
      const auto mutant = run_mutant_pipeline(faults, mut, def);
      if (mutant.safety == genuine.safety &&
          mutant.activation == genuine.activation) {
        continue;
      }
      ++divergent;
      if (!check_pipeline(faults, mutant, oracle_options(def)).ok()) {
        ++caught;
      }
    }
  }
  // The sweep must actually exercise divergent mutants to mean anything.
  EXPECT_GT(divergent, 20u);
  EXPECT_GE(caught * 4, divergent * 3)
      << "oracle caught " << caught << " of " << divergent
      << " divergent mutant labelings";
}

TEST(MutationTest, ShrinkerReducesMutantFailureToReplayableMinimum) {
  // Acceptance scenario: a fuzz-style failure (oracle violation under the
  // threshold-one activation mutant) shrinks to a local-minimal fault set
  // whose trace replays to the same failure.
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  for (Coord c : {Coord{6, 0}, {4, 1}, {1, 2}, {3, 2}, {2, 3}, {4, 4}}) {
    faults.insert(c);
  }
  const FailurePredicate mutant_fails = [](const grid::CellSet& candidate) {
    const auto result = run_mutant_pipeline(
        candidate, Mutant::ActivationThresholdOne, SafeUnsafeDef::Def2b);
    return !check_pipeline(candidate, result,
                           oracle_options(SafeUnsafeDef::Def2b))
                .ok();
  };
  ASSERT_TRUE(mutant_fails(faults));
  const auto shrunk = shrink_faults(faults, mutant_fails);
  EXPECT_LT(shrunk.faults.size(), faults.size());
  EXPECT_TRUE(mutant_fails(shrunk.faults));
  // Local minimality: every single-fault removal passes.
  for (const Coord c : shrunk.faults.to_vector()) {
    grid::CellSet candidate = shrunk.faults;
    candidate.erase(c);
    EXPECT_FALSE(mutant_fails(candidate));
  }
  // The trace replays to the identical failing instance.
  const auto reloaded = fault::from_trace_string(shrunk.trace);
  EXPECT_TRUE(reloaded == shrunk.faults);
  EXPECT_TRUE(mutant_fails(reloaded));
}

}  // namespace
}  // namespace ocp::check
