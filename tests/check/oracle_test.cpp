// InvariantOracle unit tests: clean labelings pass, tampered labelings are
// flagged with the right check bit, the report machinery behaves.
#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "core/pipeline.hpp"
#include "fault/fixtures.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::check {
namespace {

using labeling::Activation;
using labeling::PipelineOptions;
using labeling::SafeUnsafeDef;
using labeling::Safety;
using mesh::Mesh2D;
using mesh::Topology;

OracleOptions options_for(SafeUnsafeDef def) {
  OracleOptions opts;
  opts.definition = def;
  return opts;
}

TEST(OracleTest, PaperFixturesPassEveryCheck) {
  for (const auto& fixture :
       {fault::worked_example(), fault::figure1(), fault::figure2a(),
        fault::figure2b()}) {
    for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
      PipelineOptions popts;
      popts.definition = def;
      const auto result = labeling::run_pipeline(fixture.faults, popts);
      const auto report =
          check_pipeline(fixture.faults, result, options_for(def));
      EXPECT_TRUE(report.ok())
          << fixture.name << " " << to_string(def) << "\n"
          << report.to_string();
    }
  }
}

TEST(OracleTest, RandomInstancesPassOnMeshAndTorus) {
  stats::Rng master(11);
  for (int k = 0; k < 40; ++k) {
    stats::Rng rng(master.fork_seed());
    const Mesh2D m(static_cast<std::int32_t>(rng.uniform_int(4, 20)),
                   static_cast<std::int32_t>(rng.uniform_int(4, 20)),
                   k % 2 == 0 ? Topology::Mesh : Topology::Torus);
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(0, std::max<std::int64_t>(1, m.node_count() / 5)));
    const auto faults = fault::uniform_random(m, f, rng);
    const auto def = k % 4 < 2 ? SafeUnsafeDef::Def2a : SafeUnsafeDef::Def2b;
    PipelineOptions popts;
    popts.definition = def;
    const auto result = labeling::run_pipeline(faults, popts);
    auto opts = options_for(def);
    opts.round_bound = RoundBound::ProgressOnly;
    const auto report = check_pipeline(faults, result, opts);
    EXPECT_TRUE(report.ok()) << m.describe() << " " << to_string(def) << "\n"
                             << report.to_string();
  }
}

TEST(OracleTest, ReferenceEngineResultsSkipConvergenceChecks) {
  const Mesh2D m(12, 12);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 10, rng);
  PipelineOptions popts;
  popts.engine = labeling::Engine::Reference;
  const auto result = labeling::run_pipeline(faults, popts);
  EXPECT_EQ(result.safety_stats.rounds_executed, 0);
  const auto report = check_pipeline(faults, result, {});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Tampering with a correct result must produce the matching violation.

TEST(OracleTest, TamperedActivationTripsStatusLattice) {
  const Mesh2D m(10, 10);
  grid::CellSet faults(m);
  faults.insert({4, 4});
  faults.insert({5, 5});
  auto result = labeling::run_pipeline(faults);
  // Disable a safe node: disabled => unsafe breaks.
  result.activation[{0, 0}] = Activation::Disabled;
  OracleOptions opts;
  opts.checks = kStatusLattice;
  const auto report = check_pipeline(faults, result, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].check, kStatusLattice);
}

TEST(OracleTest, TamperedSafetyTripsFixpointAndExtraction) {
  const Mesh2D m(10, 10);
  grid::CellSet faults(m);
  faults.insert({4, 4});
  faults.insert({5, 5});
  auto result = labeling::run_pipeline(faults);
  // An isolated unsafe island the final planes cannot justify.
  result.safety[{0, 0}] = Safety::Unsafe;
  OracleOptions opts;
  opts.checks = kFixpoint;
  auto report = check_pipeline(faults, result, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].check, kFixpoint);

  // Blocks no longer partition the unsafe set either.
  opts.checks = kExtraction;
  report = check_pipeline(faults, result, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].check, kExtraction);
}

TEST(OracleTest, FaultyNodeMislabeledSafeIsFlagged) {
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  faults.insert({3, 3});
  auto result = labeling::run_pipeline(faults);
  result.safety[{3, 3}] = Safety::Safe;
  OracleOptions opts;
  opts.checks = kStatusLattice;
  const auto report = check_pipeline(faults, result, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].check, kStatusLattice);
}

TEST(OracleTest, ChecksMaskSelectsInvariants) {
  const Mesh2D m(8, 8);
  grid::CellSet faults(m);
  faults.insert({3, 3});
  auto result = labeling::run_pipeline(faults);
  result.safety[{3, 3}] = Safety::Safe;
  // With the lattice check masked out the tampering goes unreported.
  OracleOptions opts;
  opts.checks = kAllChecks & ~(kStatusLattice | kExtraction | kFixpoint |
                               kBlockFaultContent | kRegionFaultContent);
  const auto report = check_pipeline(faults, result, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(OracleTest, MaxViolationsTruncatesReport) {
  const Mesh2D m(12, 12);
  grid::CellSet faults(m);
  auto result = labeling::run_pipeline(faults);
  // Mass tampering: every node disabled while safe.
  for (std::size_t i = 0; i < result.activation.size(); ++i) {
    result.activation.at_index(i) = Activation::Disabled;
  }
  OracleOptions opts;
  opts.checks = kStatusLattice;
  opts.max_violations = 5;
  const auto report = check_pipeline(faults, result, opts);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.size(), 5u);
  EXPECT_NE(report.to_string().find("truncated"), std::string::npos);
}

TEST(OracleTest, MergeConcatenatesReports) {
  ViolationReport a;
  a.violations.push_back({kTheorem1, "one"});
  ViolationReport b;
  b.violations.push_back({kLemma1, "two"});
  b.truncated = true;
  a.merge(std::move(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.truncated);
  EXPECT_EQ(a.violations[1].check, kLemma1);
}

TEST(OracleTest, CheckNamesAreUniqueAndKnown) {
  std::vector<std::string> names;
  for (std::uint32_t bit = 0; bit < 16; ++bit) {
    names.emplace_back(check_name(1u << bit));
  }
  names.emplace_back(check_name(kMetamorphic));
  names.emplace_back(check_name(kScheduleIndependence));
  names.emplace_back(check_name(kEngineEquivalence));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_NE(names[i], "unknown-check") << "bit index " << i;
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(OracleTest, WrappedTorusRingAcceptedAsBand) {
  // The EquatorRing scenario: a full ring of faults disables the whole
  // torus. The planar corner lemmas do not apply to wrapped regions; the
  // cylinder-form convexity and the bookkeeping checks must still pass.
  const Mesh2D m(8, 8, Topology::Torus);
  grid::CellSet faults(m);
  for (std::int32_t x = 0; x < 8; ++x) faults.insert({x, 4});
  const auto result = labeling::run_pipeline(faults);
  ASSERT_EQ(result.regions.size(), 1u);
  auto opts = options_for(SafeUnsafeDef::Def2b);
  opts.round_bound = RoundBound::ProgressOnly;
  const auto report = check_pipeline(faults, result, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace ocp::check
