// Schedule-adversarial runner tests: every hostile schedule reaches the
// synchronous fixpoint, deterministically per seed.
#include <gtest/gtest.h>

#include "check/schedules.hpp"
#include "core/activation_protocol.hpp"
#include "core/safety_protocol.hpp"
#include "fault/fixtures.hpp"
#include "fault/generators.hpp"

namespace ocp::check {
namespace {

using labeling::SafeUnsafeDef;
using labeling::SafetyProtocol;
using mesh::Mesh2D;
using mesh::Topology;

TEST(SchedulesTest, EveryScheduleReachesSyncFixpoint) {
  stats::Rng master(17);
  for (int k = 0; k < 16; ++k) {
    stats::Rng rng(master.fork_seed());
    const Mesh2D m(static_cast<std::int32_t>(rng.uniform_int(3, 16)),
                   static_cast<std::int32_t>(rng.uniform_int(3, 16)),
                   k % 2 == 0 ? Topology::Mesh : Topology::Torus);
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(0, std::max<std::int64_t>(1, m.node_count() / 5)));
    const auto faults = fault::uniform_random(m, f, rng);
    const auto def = k % 4 < 2 ? SafeUnsafeDef::Def2a : SafeUnsafeDef::Def2b;
    const auto report =
        check_schedules(faults, def, static_cast<std::uint64_t>(k + 1));
    EXPECT_TRUE(report.ok()) << m.describe() << " " << to_string(def) << "\n"
                             << report.to_string();
  }
}

TEST(SchedulesTest, FixturesPassUnderAllSchedules) {
  for (const auto& fixture : {fault::worked_example(), fault::figure2b()}) {
    for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
      const auto report = check_schedules(fixture.faults, def);
      EXPECT_TRUE(report.ok()) << fixture.name << "\n" << report.to_string();
    }
  }
}

TEST(SchedulesTest, RunScheduledMatchesRunSyncDirectly) {
  const Mesh2D m(12, 9, Topology::Mesh);
  stats::Rng gen(31);
  const auto faults = fault::uniform_random(m, 14, gen);
  const mesh::AdjacencyTable adj(m);
  const SafetyProtocol proto(faults, SafeUnsafeDef::Def2a);
  const auto sync = sim::run_sync(adj, proto);
  for (Schedule sched : kAllSchedules) {
    stats::Rng rng(7);
    const auto result = run_scheduled(adj, proto, sched, rng);
    for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
         ++i) {
      ASSERT_EQ(result.states.at_index(i).safety,
                sync.states.at_index(i).safety)
          << to_string(sched) << " node " << i;
    }
  }
}

TEST(SchedulesTest, SeededRunsAreDeterministic) {
  const Mesh2D m(10, 10, Topology::Torus);
  stats::Rng gen(5);
  const auto faults = fault::uniform_random(m, 12, gen);
  const mesh::AdjacencyTable adj(m);
  const SafetyProtocol proto(faults, SafeUnsafeDef::Def2b);
  for (Schedule sched : {Schedule::SeededRandom, Schedule::DelayedSweep}) {
    stats::Rng a(99);
    stats::Rng b(99);
    const auto ra = run_scheduled(adj, proto, sched, a);
    const auto rb = run_scheduled(adj, proto, sched, b);
    EXPECT_EQ(ra.stats.activations, rb.stats.activations)
        << to_string(sched);
    EXPECT_EQ(ra.stats.sweeps, rb.stats.sweeps) << to_string(sched);
  }
}

TEST(SchedulesTest, LifoUsesSingleWorklistPass) {
  const Mesh2D m(8, 8, Topology::Mesh);
  grid::CellSet faults(m);
  faults.insert({3, 3});
  faults.insert({3, 5});
  const mesh::AdjacencyTable adj(m);
  const SafetyProtocol proto(faults, SafeUnsafeDef::Def2b);
  stats::Rng rng(1);
  const auto result = run_scheduled(adj, proto, Schedule::Lifo, rng);
  EXPECT_EQ(result.stats.sweeps, 1);
  const auto sync = sim::run_sync(adj, proto);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    ASSERT_EQ(result.states.at_index(i).safety,
              sync.states.at_index(i).safety);
  }
}

TEST(SchedulesTest, ZeroFaultsQuiesceImmediately) {
  const Mesh2D m(6, 6, Topology::Torus);
  const grid::CellSet faults(m);
  const auto report = check_schedules(faults);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace ocp::check
