// Edge-geometry regressions: degenerate machine shapes and extreme fault
// patterns, validated through every verification layer (oracle, engine
// cross-check, metamorphic symmetries, adversarial schedules) on mesh and
// torus under both safe/unsafe definitions.
#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "core/pipeline.hpp"

namespace ocp::check {
namespace {

using labeling::SafeUnsafeDef;
using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

/// Runs the full verification stack on one instance.
void expect_all_layers_clean(const grid::CellSet& faults) {
  const FuzzConfig config;
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    const auto report = check_instance(faults, def, config);
    EXPECT_TRUE(report.ok())
        << faults.topology().describe() << " " << to_string(def) << "\n"
        << report.to_string();
  }
}

TEST(EdgeGeometryTest, SingleNodeMachines) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(1, 1, topology);
    // Healthy singleton.
    expect_all_layers_clean(grid::CellSet(m));
    // Faulty singleton: the whole machine is one faulty block.
    grid::CellSet faults(m);
    faults.insert({0, 0});
    expect_all_layers_clean(faults);
    const auto result = labeling::run_pipeline(faults);
    ASSERT_EQ(result.blocks.size(), 1u);
    EXPECT_EQ(result.blocks[0].size(), 1u);
    EXPECT_EQ(result.enabled_total(), 0u);
  }
}

TEST(EdgeGeometryTest, OneDimensionalMachines) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const auto run_case = [&](std::int32_t w, std::int32_t h) {
      const Mesh2D m(w, h, topology);
      expect_all_layers_clean(grid::CellSet(m));
      // A fault at each end and one in the middle.
      grid::CellSet faults(m);
      faults.insert({0, 0});
      faults.insert({(w - 1) / 2, (h - 1) / 2});
      faults.insert({w - 1, h - 1});
      expect_all_layers_clean(faults);
    };
    run_case(1, 9);
    run_case(9, 1);
    run_case(1, 2);
    run_case(2, 1);
  }
}

TEST(EdgeGeometryTest, TwoByTwoMachines) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(2, 2, topology);
    expect_all_layers_clean(grid::CellSet(m));
    // Diagonal pair: an 8-connected two-cell disabled region.
    grid::CellSet diagonal(m);
    diagonal.insert({0, 0});
    diagonal.insert({1, 1});
    expect_all_layers_clean(diagonal);
    // Full machine faulty.
    grid::CellSet full(m);
    for (std::int32_t y = 0; y < 2; ++y) {
      for (std::int32_t x = 0; x < 2; ++x) full.insert({x, y});
    }
    expect_all_layers_clean(full);
  }
}

TEST(EdgeGeometryTest, ZeroFaultsLeaveEverythingEnabled) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(11, 7, topology);
    const grid::CellSet faults(m);
    expect_all_layers_clean(faults);
    const auto result = labeling::run_pipeline(faults);
    EXPECT_TRUE(result.blocks.empty());
    EXPECT_TRUE(result.regions.empty());
    EXPECT_EQ(result.disabled_nonfaulty_total(), 0u);
    for (std::size_t i = 0; i < result.activation.size(); ++i) {
      ASSERT_EQ(result.activation.at_index(i), labeling::Activation::Enabled);
    }
    EXPECT_EQ(result.safety_stats.rounds_to_quiesce, 0);
  }
}

TEST(EdgeGeometryTest, AllFaultyMachineIsOneRegion) {
  for (auto topology : {Topology::Mesh, Topology::Torus}) {
    const Mesh2D m(6, 5, topology);
    grid::CellSet faults(m);
    for (std::int32_t y = 0; y < m.height(); ++y) {
      for (std::int32_t x = 0; x < m.width(); ++x) faults.insert({x, y});
    }
    expect_all_layers_clean(faults);
    const auto result = labeling::run_pipeline(faults);
    ASSERT_EQ(result.blocks.size(), 1u);
    ASSERT_EQ(result.regions.size(), 1u);
    EXPECT_EQ(result.enabled_total(), 0u);
    EXPECT_EQ(result.regions[0].fault_count,
              static_cast<std::size_t>(m.node_count()));
    // No participants: both phases quiesce without a single status change.
    EXPECT_EQ(result.safety_stats.state_changes, 0u);
  }
}

TEST(EdgeGeometryTest, FourCornerFaultsOnMeshStaySingletons) {
  const Mesh2D m(8, 8, Topology::Mesh);
  grid::CellSet faults(m);
  for (Coord c : {Coord{0, 0}, {7, 0}, {0, 7}, {7, 7}}) faults.insert(c);
  expect_all_layers_clean(faults);
  const auto result = labeling::run_pipeline(faults);
  // Ghost support keeps each corner an isolated singleton block.
  EXPECT_EQ(result.blocks.size(), 4u);
  for (const auto& block : result.blocks) EXPECT_EQ(block.size(), 1u);
}

TEST(EdgeGeometryTest, FourCornerFaultsOnTorusMergeAcrossBothSeams) {
  const Mesh2D m(8, 8, Topology::Torus);
  grid::CellSet faults(m);
  for (Coord c : {Coord{0, 0}, {7, 0}, {0, 7}, {7, 7}}) faults.insert(c);
  expect_all_layers_clean(faults);
  const auto result = labeling::run_pipeline(faults);
  // With wraparound the four corners are one 2x2 square spanning both
  // seams simultaneously — one block, one region.
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 4u);
  EXPECT_EQ(result.blocks[0].fault_count, 4u);
  EXPECT_TRUE(result.blocks[0].region().is_rectangle());
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].fault_count, 4u);
}

}  // namespace
}  // namespace ocp::check
