// Fuzz-loop tests: determinism from the master seed, clean runs on the
// genuine pipeline, time-box behavior, degenerate configurations.
#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "fault/trace.hpp"

namespace ocp::check {
namespace {

TEST(FuzzerTest, GenuinePipelinePassesSmokeRun) {
  FuzzConfig config;
  config.seed = 2026;
  config.instances = 80;
  config.max_size = 12;
  const auto report = run_fuzz(config);
  EXPECT_EQ(report.instances_run, 80u);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.timed_out);
}

TEST(FuzzerTest, RunsAreDeterministicPerSeed) {
  FuzzConfig config;
  config.seed = 555;
  config.instances = 30;
  config.max_size = 10;
  const auto a = run_fuzz(config);
  const auto b = run_fuzz(config);
  EXPECT_EQ(a.instances_run, b.instances_run);
  EXPECT_EQ(a.failure_count, b.failure_count);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].instance_seed, b.failures[i].instance_seed);
    EXPECT_EQ(a.failures[i].trace, b.failures[i].trace);
  }
}

TEST(FuzzerTest, TimeBoxStopsLongRuns) {
  FuzzConfig config;
  config.instances = 100000000;  // would take hours unboxed
  config.time_box_ms = 50;
  const auto report = run_fuzz(config);
  EXPECT_TRUE(report.timed_out);
  EXPECT_LT(report.instances_run, config.instances);
}

TEST(FuzzerTest, EmptyTopologySelectionRunsNothing) {
  FuzzConfig config;
  config.meshes = false;
  config.tori = false;
  const auto report = run_fuzz(config);
  EXPECT_EQ(report.instances_run, 0u);
  EXPECT_TRUE(report.ok());
}

TEST(FuzzerTest, CheckInstanceAcceptsReplayedTrace) {
  // The --replay path of the check_fuzz binary: a trace round-trips through
  // the fault trace format and checks clean on the genuine pipeline.
  const auto faults = fault::from_trace_string(
      "ocpmesh-trace v1\n"
      "machine 9 7 torus\n"
      "fault 2 2\n"
      "fault 6 4\n"
      "fault 0 6\n");
  FuzzConfig config;
  for (auto def :
       {labeling::SafeUnsafeDef::Def2a, labeling::SafeUnsafeDef::Def2b}) {
    const auto report = check_instance(faults, def, config);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

}  // namespace
}  // namespace ocp::check
