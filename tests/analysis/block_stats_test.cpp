#include <gtest/gtest.h>

#include <sstream>

#include "analysis/block_stats.hpp"

namespace ocp::analysis {
namespace {

BlockStatsConfig small_config() {
  BlockStatsConfig config;
  config.n = 40;
  config.fault_counts = {0, 8, 16};
  config.trials = 20;
  config.seed = 5;
  return config;
}

TEST(BlockStatsTest, ZeroFaultsProducesEmptyRow) {
  auto config = small_config();
  config.fault_counts = {0};
  const auto rows = run_block_stats(config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].block_size.empty());
  EXPECT_TRUE(rows[0].singleton_pct.empty());
}

TEST(BlockStatsTest, SparseFaultsAreMostlySingletons) {
  const auto rows = run_block_stats(small_config());
  // 8 faults on 1600 nodes (0.5%): overwhelmingly singleton blocks.
  EXPECT_GT(rows[1].singleton_pct.mean(), 90.0);
  EXPECT_LT(rows[1].block_size.mean(), 1.5);
  EXPECT_LT(rows[1].block_diameter.mean(), 0.5);
}

TEST(BlockStatsTest, DensityGrowsBlockSizes) {
  auto config = small_config();
  config.fault_counts = {8, 160};  // 0.5% vs 10%
  const auto rows = run_block_stats(config);
  EXPECT_GT(rows[1].block_size.mean(), rows[0].block_size.mean());
  EXPECT_LT(rows[1].singleton_pct.mean(), rows[0].singleton_pct.mean());
}

TEST(BlockStatsTest, RegionSizesNeverExceedBlockSizes) {
  const auto rows = run_block_stats(small_config());
  for (const auto& row : rows) {
    if (row.block_size.empty()) continue;
    EXPECT_LE(row.region_size.mean(), row.block_size.mean() + 1e-9);
  }
}

TEST(BlockStatsTest, TableRendersSparkline) {
  const auto rows = run_block_stats(small_config());
  const auto table = block_stats_table(rows);
  EXPECT_EQ(table.row_count(), rows.size());
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("singleton %"), std::string::npos);
}

}  // namespace
}  // namespace ocp::analysis
