// Unit tests for the partition and synchrony study runners.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/async_study.hpp"
#include "analysis/partition_study.hpp"

namespace ocp::analysis {
namespace {

TEST(PartitionStudyTest, CoverHierarchyHoldsPerRow) {
  PartitionStudyConfig config;
  config.n = 32;
  config.fault_counts = {0, 10, 25};
  config.trials = 10;
  const auto rows = run_partition_study(config);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_LE(row.nonfaulty_optimal.mean(),
              row.nonfaulty_touching.mean() + 1e-9);
    EXPECT_LE(row.nonfaulty_touching.mean(),
              row.nonfaulty_separated.mean() + 1e-9);
    EXPECT_LE(row.nonfaulty_separated.mean(),
              row.nonfaulty_regions.mean() + 1e-9);
    EXPECT_GE(row.polygons_touching.mean(), row.polygons_regions.mean());
  }
}

TEST(PartitionStudyTest, ClusteredModeSplitsRegions) {
  PartitionStudyConfig config;
  config.n = 48;
  config.fault_counts = {32};
  config.trials = 15;
  config.clustered = true;
  const auto rows = run_partition_study(config);
  ASSERT_EQ(rows.size(), 1u);
  // Clustered faults produce regions the Touching rule can cut further.
  EXPECT_GT(rows[0].regions_split_pct.mean(), 0.0);
  EXPECT_LT(rows[0].nonfaulty_touching.mean(),
            rows[0].nonfaulty_regions.mean());
}

TEST(PartitionStudyTest, TableRenders) {
  PartitionStudyConfig config;
  config.n = 16;
  config.fault_counts = {4};
  config.trials = 4;
  const auto table = partition_study_table(run_partition_study(config));
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("nonfaulty(touching)"), std::string::npos);
}

TEST(AsyncStudyTest, FixpointsAlwaysMatch) {
  AsyncStudyConfig config;
  config.n = 32;
  config.fault_counts = {0, 12, 30};
  config.trials = 10;
  const auto rows = run_async_study(config);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.fixpoint_match_pct.mean(), 100.0);
    // Async needs at least the quiescence-detection sweep.
    EXPECT_GE(row.async_sweeps.mean(), 1.0);
    // Event-driven messaging never exceeds broadcast.
    EXPECT_LE(row.msgs_event_per_node.mean(),
              row.msgs_broadcast_per_node.mean() + 1e-9);
  }
}

TEST(AsyncStudyTest, BroadcastCostGrowsWithDensity) {
  AsyncStudyConfig config;
  config.n = 40;
  config.fault_counts = {4, 60};
  config.trials = 12;
  const auto rows = run_async_study(config);
  EXPECT_GT(rows[1].msgs_broadcast_per_node.mean(),
            rows[0].msgs_broadcast_per_node.mean());
  // Event-driven cost stays flat (~4 messages/node initial announcements).
  EXPECT_NEAR(rows[1].msgs_event_per_node.mean(),
              rows[0].msgs_event_per_node.mean(), 0.5);
}

TEST(AsyncStudyTest, TableRenders) {
  AsyncStudyConfig config;
  config.n = 16;
  config.fault_counts = {5};
  config.trials = 4;
  const auto table = async_study_table(run_async_study(config));
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("fixpoint match %"), std::string::npos);
}

}  // namespace
}  // namespace ocp::analysis
