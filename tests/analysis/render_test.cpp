#include <gtest/gtest.h>

#include "analysis/render.hpp"
#include "fault/fixtures.hpp"

namespace ocp::analysis {
namespace {

TEST(RenderTest, GlyphsMatchStatuses) {
  const auto fx = fault::worked_example();
  const auto result = labeling::run_pipeline(fx.faults);
  const std::string art = render_labeling(fx.faults, result);

  // 6x6 machine: 6 lines of 6 glyphs.
  ASSERT_EQ(art.size(), 6u * 7u);
  // All three faults render as 'X'; the worked example enables every
  // nonfaulty block cell, so there must be exactly six 'e' and no 'd'.
  EXPECT_EQ(std::count(art.begin(), art.end(), 'X'), 3);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'e'), 6);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'd'), 0);
}

TEST(RenderTest, TopRowIsHighestY) {
  const auto fx = fault::worked_example();  // fault at (1,3) on 6x6
  const auto result = labeling::run_pipeline(fx.faults);
  const std::string art = render_labeling(fx.faults, result);
  // Row printed first is y = 5; the fault (1,3) appears on line index 2
  // (y = 3), column 1.
  const std::size_t line_len = 7;  // 6 glyphs + newline
  EXPECT_EQ(art[2 * line_len + 1], 'X');
}

TEST(RenderTest, SafetyRenderMarksUnsafe) {
  const auto fx = fault::figure2b();
  const auto result = labeling::run_pipeline(fx.faults);
  const std::string art = render_safety(fx.faults, result.safety);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'X'), 18);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'u'), 2);  // the pocket
}

TEST(RenderTest, DisabledPocketRendersAsD) {
  const auto fx = fault::figure2b();
  const auto result = labeling::run_pipeline(fx.faults);
  const std::string art = render_labeling(fx.faults, result);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'd'), 2);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'e'), 0);
}

}  // namespace
}  // namespace ocp::analysis
