#include <gtest/gtest.h>

#include <sstream>

#include "analysis/ablation.hpp"

namespace ocp::analysis {
namespace {

TEST(DefinitionAblationTest, Def2bSwallowsNoMoreThanDef2a) {
  DefinitionAblationConfig config;
  config.n = 32;
  config.fault_counts = {10, 30};
  config.trials = 20;
  const auto rows = run_definition_ablation(config);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    // Definition 2b's unsafe set is a subset of 2a's on every instance, so
    // the means are ordered.
    EXPECT_LE(row.unsafe_nonfaulty_2b.mean(), row.unsafe_nonfaulty_2a.mean());
    // And 2b can only split blocks relative to 2a.
    EXPECT_GE(row.blocks_2b.mean(), row.blocks_2a.mean());
  }
}

TEST(DefinitionAblationTest, TableRendersAllRows) {
  DefinitionAblationConfig config;
  config.n = 16;
  config.fault_counts = {5};
  config.trials = 5;
  const auto rows = run_definition_ablation(config);
  const auto table = definition_ablation_table(rows);
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("unsafe-nf(2a)"), std::string::npos);
}

TEST(RoutingAblationTest, ModelsAreOrderedBySacrifice) {
  RoutingAblationConfig config;
  config.n = 24;
  config.fault_counts = {15};
  config.trials = 8;
  config.pairs = 150;
  const auto rows = run_routing_ablation(config);
  ASSERT_EQ(rows.size(), 3u);

  const auto& raw = rows[0];
  const auto& blocks = rows[1];
  const auto& regions = rows[2];
  ASSERT_EQ(raw.model, BlockModel::RawFaults);
  ASSERT_EQ(blocks.model, BlockModel::FaultyBlocks);
  ASSERT_EQ(regions.model, BlockModel::DisabledRegions);

  // Raw faults sacrifice nothing; disabled regions sacrifice no more than
  // rectangular blocks (that is the point of the paper).
  EXPECT_DOUBLE_EQ(raw.sacrificed_nonfaulty.mean(), 0.0);
  EXPECT_LE(regions.sacrificed_nonfaulty.mean(),
            blocks.sacrificed_nonfaulty.mean());

  // Both labeled models deliver everything with the ring router.
  EXPECT_DOUBLE_EQ(blocks.delivery_rate.mean(), 100.0);
  EXPECT_DOUBLE_EQ(regions.delivery_rate.mean(), 100.0);
}

TEST(RoutingAblationTest, TableRendersAllRows) {
  RoutingAblationConfig config;
  config.n = 16;
  config.fault_counts = {6};
  config.trials = 3;
  config.pairs = 50;
  const auto rows = run_routing_ablation(config);
  const auto table = routing_ablation_table(rows);
  EXPECT_EQ(table.row_count(), 3u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("disabled-regions"), std::string::npos);
}

TEST(BlockModelTest, Names) {
  EXPECT_STREQ(to_string(BlockModel::RawFaults), "raw-faults");
  EXPECT_STREQ(to_string(BlockModel::FaultyBlocks), "faulty-blocks");
  EXPECT_STREQ(to_string(BlockModel::DisabledRegions), "disabled-regions");
}

}  // namespace
}  // namespace ocp::analysis
