// Scaled-down runs of the Figure 5 experiment: shape assertions on the
// paper's reported trends, fast enough for CI.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/fig5.hpp"

namespace ocp::analysis {
namespace {

Fig5Config small_config() {
  Fig5Config config;
  config.n = 40;
  config.fault_counts = {0, 10, 20, 40};
  config.trials = 30;
  config.seed = 123;
  return config;
}

TEST(Fig5Test, ZeroFaultsZeroRounds) {
  auto config = small_config();
  config.fault_counts = {0};
  const auto rows = run_fig5(config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].rounds_blocks.mean(), 0.0);
  EXPECT_EQ(rows[0].rounds_regions.mean(), 0.0);
  EXPECT_EQ(rows[0].block_count.mean(), 0.0);
  EXPECT_TRUE(rows[0].enabled_ratio_per_block.empty());
}

TEST(Fig5Test, RoundsAreFarBelowMeshDiameter) {
  // The paper's headline: convergence needs far fewer rounds than the mesh
  // diameter (2(n-1) = 78 here).
  const auto rows = run_fig5(small_config());
  for (const auto& row : rows) {
    EXPECT_LT(row.rounds_blocks.mean(), 10.0) << "f=" << row.f;
    EXPECT_LT(row.rounds_regions.mean(), 10.0) << "f=" << row.f;
  }
}

TEST(Fig5Test, RegionRoundsBelowBlockRounds) {
  // "The average number for disabled regions ... is lower than the number
  // for faulty blocks, because disabled regions are generated out of faulty
  // blocks." Checked at a density where blocks actually form.
  auto config = small_config();
  config.fault_counts = {40};
  config.trials = 60;
  const auto rows = run_fig5(config);
  EXPECT_LE(rows[0].rounds_regions.mean(), rows[0].rounds_blocks.mean());
}

TEST(Fig5Test, EnabledRatioIsHighAndDecreasesWithDensity) {
  // "The average percentage of enabled nodes among unsafe but nonfaulty
  // nodes ... stays very high, especially when the number of faults is
  // relatively low."
  auto config = small_config();
  config.fault_counts = {10, 80};
  config.trials = 60;
  const auto rows = run_fig5(config);
  ASSERT_FALSE(rows[0].enabled_ratio_per_block.empty());
  EXPECT_GT(rows[0].enabled_ratio_per_block.mean(), 90.0);
  ASSERT_FALSE(rows[1].enabled_ratio_per_block.empty());
  EXPECT_GE(rows[0].enabled_ratio_per_block.mean(),
            rows[1].enabled_ratio_per_block.mean() - 1.0);
}

TEST(Fig5Test, RoundsGrowWithFaultCount) {
  auto config = small_config();
  config.fault_counts = {5, 60};
  config.trials = 60;
  const auto rows = run_fig5(config);
  EXPECT_LT(rows[0].rounds_blocks.mean(), rows[1].rounds_blocks.mean());
}

TEST(Fig5Test, DeterministicForFixedSeed) {
  const auto a = run_fig5(small_config());
  const auto b = run_fig5(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].rounds_blocks.mean(), b[i].rounds_blocks.mean());
    EXPECT_DOUBLE_EQ(a[i].enabled_ratio_pooled.mean(),
                     b[i].enabled_ratio_pooled.mean());
  }
}

TEST(Fig5Test, DefaultFaultCounts) {
  const auto counts = Fig5Config::default_fault_counts(5, 100);
  ASSERT_EQ(counts.size(), 21u);
  EXPECT_EQ(counts.front(), 0);
  EXPECT_EQ(counts.back(), 100);
  const auto dense = Fig5Config::default_fault_counts(1, 100);
  EXPECT_EQ(dense.size(), 101u);
}

TEST(Fig5Test, TableHasOneRowPerFaultCount) {
  const auto rows = run_fig5(small_config());
  const auto table = fig5_table(rows);
  EXPECT_EQ(table.row_count(), rows.size());
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("rounds(FB)"), std::string::npos);
}

TEST(Fig5Test, TorusConfigRuns) {
  auto config = small_config();
  config.topology = mesh::Topology::Torus;
  config.fault_counts = {15};
  config.trials = 10;
  const auto rows = run_fig5(config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].block_count.mean(), 0.0);
}

}  // namespace
}  // namespace ocp::analysis
