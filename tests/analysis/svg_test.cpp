#include "analysis/svg.hpp"

#include <gtest/gtest.h>

#include "fault/fixtures.hpp"
#include "routing/router.hpp"

namespace ocp::analysis {
namespace {

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgTest, OneRectPerNode) {
  const auto fx = fault::worked_example();  // 6x6 machine
  const auto result = labeling::run_pipeline(fx.faults);
  const std::string svg = render_labeling_svg(fx.faults, result);
  EXPECT_EQ(count_substr(svg, "<rect"), 36u);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgTest, StatusColorsAppearWithCorrectMultiplicity) {
  const auto fx = fault::worked_example();
  const auto result = labeling::run_pipeline(fx.faults);
  SvgStyle style;
  const std::string svg = render_labeling_svg(fx.faults, result, style);
  // 3 faults, 6 re-enabled (worked example enables all), no disabled
  // healthy nodes.
  EXPECT_EQ(count_substr(svg, style.faulty), 3u);
  EXPECT_EQ(count_substr(svg, style.enabled_unsafe), 6u);
  EXPECT_EQ(count_substr(svg, style.disabled_nonfaulty), 0u);
  EXPECT_EQ(count_substr(svg, style.safe), 36u - 9u);
}

TEST(SvgTest, Figure2bShowsDisabledPocket) {
  const auto fx = fault::figure2b();
  const auto result = labeling::run_pipeline(fx.faults);
  SvgStyle style;
  const std::string svg = render_labeling_svg(fx.faults, result, style);
  EXPECT_EQ(count_substr(svg, style.disabled_nonfaulty), 2u);
  EXPECT_EQ(count_substr(svg, style.enabled_unsafe), 0u);
}

TEST(SvgTest, RouteOverlayDrawsSegmentsAndEndpoints) {
  const auto fx = fault::worked_example();
  const auto result = labeling::run_pipeline(fx.faults);
  const auto blocked = labeling::disabled_cells(result.activation);
  const routing::FaultRingRouter router(fx.faults.topology(), blocked);
  const auto route = router.route({0, 0}, {5, 5});
  ASSERT_TRUE(route.delivered());
  const std::string svg = render_route_svg(fx.faults, result, route);
  EXPECT_EQ(count_substr(svg, "<line"),
            static_cast<std::size_t>(route.hops()));
  EXPECT_EQ(count_substr(svg, "<circle"), 2u);
}

TEST(SvgTest, CellSizeScalesCanvas) {
  const auto fx = fault::worked_example();
  const auto result = labeling::run_pipeline(fx.faults);
  SvgStyle style;
  style.cell_px = 10;
  const std::string svg = render_labeling_svg(fx.faults, result, style);
  EXPECT_NE(svg.find("width=\"60\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"60\""), std::string::npos);
}

}  // namespace
}  // namespace ocp::analysis
