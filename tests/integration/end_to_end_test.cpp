// Full-stack scenarios: fault injection -> two-phase labeling -> region
// extraction -> fault-tolerant routing, on one machine in one test.
#include <gtest/gtest.h>

#include "analysis/ablation.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "geometry/convexity.hpp"
#include "routing/traffic.hpp"

namespace ocp {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(EndToEnd, LabeledMachineSupportsFullConnectivityRouting) {
  const Mesh2D m(20, 20);
  stats::Rng rng(2024);
  const auto faults = fault::uniform_random(m, 24, rng);
  const auto result = labeling::run_pipeline(faults);

  // Every disabled region is convex, so ring routing over the enabled nodes
  // is total.
  const auto blocked = labeling::disabled_cells(result.activation);
  const routing::FaultRingRouter router(m, blocked);
  const auto traffic = routing::run_all_pairs(router, blocked);
  EXPECT_DOUBLE_EQ(traffic.delivery_rate(), 1.0);
  EXPECT_GE(traffic.stretch.mean(), 0.0);
}

TEST(EndToEnd, ShapedFaultClustersAreConvexified) {
  // Inject the paper's section 2 gallery of shapes as *faults* and verify
  // the pipeline produces convex disabled regions covering them.
  const Mesh2D m(40, 40);
  const std::vector<geom::Region> shapes = {
      fault::make_u_shape({3, 3}, 5, 4),
      fault::make_h_shape({15, 3}, 5, 5),
      fault::make_l_shape({28, 3}, 6, 2),
      fault::make_t_shape({3, 20}, 5, 3),
      fault::make_plus_shape({20, 25}, 3),
  };
  const auto faults = fault::to_fault_set(m, shapes);
  const auto result = labeling::run_pipeline(faults);

  for (const auto& region : result.regions) {
    EXPECT_TRUE(geom::is_orthogonal_convex(region.region()));
  }
  // All faults covered by regions.
  std::size_t covered = 0;
  for (const auto& region : result.regions) covered += region.fault_count;
  EXPECT_EQ(covered, faults.size());

  // The concave U and H clusters force some nonfaulty nodes to stay
  // disabled (their pockets), unlike the convex L/T/+ clusters.
  EXPECT_GT(result.disabled_nonfaulty_total(), 0u);
}

TEST(EndToEnd, ConvexShapedClustersSacrificeNothing) {
  const Mesh2D m(40, 40);
  const std::vector<geom::Region> shapes = {
      fault::make_l_shape({3, 3}, 6, 2),
      fault::make_t_shape({20, 3}, 5, 3),
      fault::make_plus_shape({10, 25}, 3),
  };
  const auto faults = fault::to_fault_set(m, shapes);
  const auto result = labeling::run_pipeline(faults);
  // Orthogonal convex fault clusters are their own minimal cover: phase two
  // re-enables every nonfaulty node.
  EXPECT_EQ(result.disabled_nonfaulty_total(), 0u);
  for (const auto& region : result.regions) {
    EXPECT_EQ(region.disabled_nonfaulty_count, 0u);
  }
}

TEST(EndToEnd, DenseFaultFieldStillSatisfiesAllInvariants) {
  // 10% node failures: large irregular blocks, heavy merging.
  const Mesh2D m(30, 30);
  stats::Rng rng(99);
  const auto faults = fault::uniform_random(m, 90, rng);
  const auto result = labeling::run_pipeline(faults);

  std::size_t region_cells = 0;
  for (const auto& region : result.regions) {
    EXPECT_TRUE(geom::is_orthogonal_convex(region.region()));
    region_cells += region.size();
  }
  EXPECT_EQ(region_cells, labeling::disabled_cells(result.activation).size());
  for (const auto& block : result.blocks) {
    EXPECT_TRUE(block.region().is_rectangle());
  }
}

TEST(EndToEnd, BernoulliFaultModelWorksThroughPipeline) {
  const Mesh2D m(30, 30);
  stats::Rng rng(5);
  const auto faults = fault::bernoulli(m, 0.05, rng);
  const auto result = labeling::run_pipeline(faults);
  std::size_t fault_total = 0;
  for (const auto& block : result.blocks) fault_total += block.fault_count;
  EXPECT_EQ(fault_total, faults.size());
}

TEST(EndToEnd, ClusteredFaultModelWorksThroughPipeline) {
  const Mesh2D m(40, 40);
  stats::Rng rng(6);
  const auto faults = fault::clustered(m, 4, 12, rng);
  const auto result = labeling::run_pipeline(faults);
  for (const auto& region : result.regions) {
    EXPECT_TRUE(geom::is_orthogonal_convex(region.region()));
  }
}

TEST(EndToEnd, EnabledNodesStrictlyDominateRectangleModel) {
  // Aggregated over several instances: the disabled-region model keeps
  // at least as many nonfaulty nodes as the faulty-block model on every
  // instance, and strictly more in aggregate.
  const Mesh2D m(32, 32);
  std::size_t total_unsafe_nonfaulty = 0;
  std::size_t total_still_disabled = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 40, rng);
    const auto result = labeling::run_pipeline(faults);
    total_unsafe_nonfaulty += result.unsafe_nonfaulty_total();
    total_still_disabled += result.disabled_nonfaulty_total();
  }
  EXPECT_LT(total_still_disabled, total_unsafe_nonfaulty);
}

}  // namespace
}  // namespace ocp
