// Torus-specific integration: wraparound labeling has no ghost boundary and
// components may straddle the seams (the paper's footnote: the boundary
// problem does not exist in 2-D tori).
#include <gtest/gtest.h>

#include <set>

#include "check/fuzzer.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "geometry/convexity.hpp"

namespace ocp {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

TEST(TorusIntegration, SeamStraddlingBlockIsOneRectangle) {
  const Mesh2D m(10, 10, Topology::Torus);
  // Diagonal fault pair across the x-seam: (9,4) and (0,5).
  const grid::CellSet faults{m, {{9, 4}, {0, 5}}};
  const auto result = labeling::run_pipeline(faults);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 4u);
  EXPECT_TRUE(result.blocks[0].region().is_rectangle());
  // Both bridging cells get re-enabled.
  EXPECT_EQ(result.enabled_total(), 2u);
}

TEST(TorusIntegration, CornerStraddlingBlockAcrossBothSeams) {
  const Mesh2D m(12, 12, Topology::Torus);
  const grid::CellSet faults{m, {{11, 11}, {0, 0}}};  // diagonal across corner
  const auto result = labeling::run_pipeline(faults);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 4u);
  EXPECT_TRUE(result.blocks[0].region().is_rectangle());
}

TEST(TorusIntegration, TheoremsHoldAcrossSeams) {
  const Mesh2D m(16, 16, Topology::Torus);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    stats::Rng rng(seed * 3 + 1);
    const auto faults = fault::uniform_random(m, 25, rng);
    const auto result = labeling::run_pipeline(faults);
    for (const auto& block : result.blocks) {
      ASSERT_TRUE(block.region().is_rectangle());
    }
    for (const auto& region : result.regions) {
      ASSERT_TRUE(geom::is_orthogonal_convex(region.region()));
    }
  }
}

TEST(TorusIntegration, MeshCornerPairVersusTorusCornerPair) {
  // On a mesh, faults at opposite corners are two separate blocks; on a
  // torus they are diagonal neighbors and merge.
  const grid::CellSet mesh_faults{Mesh2D(8, 8), {{0, 0}, {7, 7}}};
  const grid::CellSet torus_faults{Mesh2D(8, 8, Topology::Torus),
                                   {{0, 0}, {7, 7}}};
  EXPECT_EQ(labeling::run_pipeline(mesh_faults).blocks.size(), 2u);
  EXPECT_EQ(labeling::run_pipeline(torus_faults).blocks.size(), 1u);
}

TEST(TorusIntegration, NoFaultsAllSafe) {
  const Mesh2D m(9, 9, Topology::Torus);
  const auto result = labeling::run_pipeline(grid::CellSet(m));
  EXPECT_TRUE(result.blocks.empty());
  EXPECT_EQ(result.safety_stats.rounds_to_quiesce, 0);
}

TEST(TorusIntegration, DisabledRegionWrapsBothSeamsSimultaneously) {
  // A diagonal fault chain through the machine corner: the faulty block and
  // its disabled region straddle the x-seam AND the y-seam at once. The
  // unwrapped 3x3 frame stays a planar rectangle while the physical cells
  // sit on all four corners of the address space.
  const Mesh2D m(12, 12, Topology::Torus);
  const grid::CellSet faults{m, {{11, 11}, {0, 0}, {1, 1}}};
  const auto result = labeling::run_pipeline(faults);
  ASSERT_EQ(result.blocks.size(), 1u);
  const auto& block = result.blocks[0];
  EXPECT_EQ(block.size(), 9u);
  EXPECT_EQ(block.fault_count, 3u);
  EXPECT_TRUE(block.region().is_rectangle());
  std::set<std::int32_t> xs, ys;
  for (Coord c : block.component.cells()) {
    xs.insert(c.x);
    ys.insert(c.y);
  }
  EXPECT_EQ(xs, (std::set<std::int32_t>{0, 1, 11}));
  EXPECT_EQ(ys, (std::set<std::int32_t>{0, 1, 11}));
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].fault_count, 3u);
  EXPECT_EQ(result.regions[0].parent_block, 0u);
  // The full verification stack (oracle, engine cross-check, metamorphic
  // symmetries, adversarial schedules) accepts the instance under both
  // definitions.
  for (auto def :
       {labeling::SafeUnsafeDef::Def2a, labeling::SafeUnsafeDef::Def2b}) {
    const auto report = check::check_instance(faults, def, check::FuzzConfig{});
    EXPECT_TRUE(report.ok()) << to_string(def) << "\n" << report.to_string();
  }
}

TEST(TorusIntegration, EquatorRingOfFaultsDisablesRing) {
  // A full ring of faults around the torus: one block that wraps a whole
  // dimension. Degenerate but must not crash or mislabel.
  const Mesh2D m(8, 8, Topology::Torus);
  grid::CellSet faults(m);
  for (std::int32_t x = 0; x < 8; ++x) faults.insert({x, 4});
  const auto result = labeling::run_pipeline(faults);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 8u);
  EXPECT_EQ(result.enabled_total(), 0u);
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].fault_count, 8u);
}

}  // namespace
}  // namespace ocp
