#include "core/fault_distance.hpp"

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "core/regions.hpp"
#include "fault/generators.hpp"
#include "routing/minimal_router.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Dir;
using mesh::Mesh2D;

/// Brute-force clear-run length from `c` in direction `d`.
std::int32_t brute_run(const grid::NodeGrid<Safety>& safety, Coord c, Dir d) {
  const mesh::Mesh2D& m = safety.topology();
  std::int32_t run = 0;
  Coord cur = c;
  while (true) {
    const auto next = m.neighbor(cur, d);
    if (!next) return FaultDistanceVector::kUnbounded;  // hit the boundary
    if (safety[*next] == Safety::Unsafe) return run;
    ++run;
    cur = *next;
    if (run > m.node_count()) return FaultDistanceVector::kUnbounded;  // torus wrap, no unsafe
  }
}

TEST(FaultDistanceTest, FaultFreeMeshIsUnboundedEverywhere) {
  const Mesh2D m(6, 6);
  const grid::CellSet faults(m);
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  sim::RoundStats stats;
  const auto vectors = compute_fault_distances(faults, safety, &stats);
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    for (Dir d : mesh::kAllDirs) {
      EXPECT_EQ(vectors.at_index(i)[d], FaultDistanceVector::kUnbounded);
    }
  }
  EXPECT_EQ(stats.rounds_to_quiesce, 0);
}

TEST(FaultDistanceTest, SingleFaultRunsAreExact) {
  const Mesh2D m(9, 9);
  const grid::CellSet faults{m, {{4, 4}}};
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  const auto vectors = compute_fault_distances(faults, safety);
  // West neighbor of the fault: 0 hops of clearance eastward.
  EXPECT_EQ((vectors[{3, 4}][Dir::East]), 0);
  EXPECT_EQ((vectors[{0, 4}][Dir::East]), 3);
  EXPECT_EQ((vectors[{5, 4}][Dir::West]), 0);
  EXPECT_EQ((vectors[{4, 0}][Dir::North]), 3);
  EXPECT_EQ((vectors[{4, 8}][Dir::South]), 3);
  // Off the fault's row/column: unbounded.
  EXPECT_EQ((vectors[{0, 0}][Dir::East]), FaultDistanceVector::kUnbounded);
}

TEST(FaultDistanceTest, MatchesBruteForceOnRandomInstances) {
  const Mesh2D m(14, 14);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 20, rng);
    const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
    const auto vectors = compute_fault_distances(faults, safety);
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      const Coord c = m.coord(i);
      if (faults.contains(c)) continue;
      for (Dir d : mesh::kAllDirs) {
        ASSERT_EQ(vectors[c][d], brute_run(safety, c, d))
            << "seed " << seed << " at " << mesh::to_string(c) << " dir "
            << mesh::to_string(d);
      }
    }
  }
}

TEST(FaultDistanceTest, ConvergesInClearRunRounds) {
  // Information travels one hop per round: the longest finite run bounds
  // the round count.
  const Mesh2D m(16, 16);
  const grid::CellSet faults{m, {{8, 8}}};
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  sim::RoundStats stats;
  static_cast<void>(compute_fault_distances(faults, safety, &stats));
  EXPECT_LE(stats.rounds_to_quiesce, 16);
  EXPECT_GE(stats.rounds_to_quiesce, 7);  // farthest in-row node
}

TEST(FaultDistanceTest, LPathCertificateIsSound) {
  // Certified pairs must always have a minimal path (no false positives);
  // exactness is not required (staircase-only pairs are not certified).
  const Mesh2D m(16, 16);
  std::size_t certified = 0;
  std::size_t feasible = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    stats::Rng rng(seed + 40);
    const auto faults = fault::uniform_random(m, 24, rng);
    const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
    const auto vectors = compute_fault_distances(faults, safety);
    const auto blocked = unsafe_cells(safety);
    stats::Rng pair_rng(seed);
    for (int i = 0; i < 120; ++i) {
      const auto src = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      const bool cert = l_path_certified(vectors, safety, src, dst);
      const bool exact = routing::minimal_path_exists(m, blocked, src, dst);
      if (cert) {
        ++certified;
        ASSERT_TRUE(exact) << "false positive " << mesh::to_string(src)
                           << " -> " << mesh::to_string(dst);
      }
      if (exact) ++feasible;
    }
  }
  // The certificate is useful: it covers the bulk of the feasible pairs at
  // this fault density.
  EXPECT_GT(certified, feasible / 2);
}

TEST(FaultDistanceTest, CertificateRejectsUnsafeEndpoints) {
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 3}, {4, 4}}};
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  const auto vectors = compute_fault_distances(faults, safety);
  EXPECT_FALSE(l_path_certified(vectors, safety, {3, 3}, {0, 0}));
  EXPECT_FALSE(l_path_certified(vectors, safety, {0, 0}, {4, 4}));
  EXPECT_FALSE(l_path_certified(vectors, safety, {-1, 0}, {4, 4}));
  EXPECT_TRUE(l_path_certified(vectors, safety, {0, 0}, {0, 7}));
  EXPECT_TRUE(l_path_certified(vectors, safety, {2, 2}, {2, 2}));
}

}  // namespace
}  // namespace ocp::labeling
