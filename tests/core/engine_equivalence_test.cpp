// Randomized property test: every engine configuration — dense serial,
// dense OpenMP-parallel (1/2/8 threads), frontier, and the centralized
// reference solver — produces identical labelings, blocks, regions, and
// (for the distributed engines) identical round counts and message counts,
// across mesh and torus topologies and fault densities 0–30%.
#include <gtest/gtest.h>

#ifdef OCP_HAVE_OPENMP
#include <omp.h>
#endif

#include "core/pipeline.hpp"
#include "core/reference.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::labeling {
namespace {

void expect_same_stats(const sim::RoundStats& a, const sim::RoundStats& b,
                       const std::string& what) {
  EXPECT_EQ(a.rounds_to_quiesce, b.rounds_to_quiesce) << what;
  EXPECT_EQ(a.rounds_executed, b.rounds_executed) << what;
  EXPECT_EQ(a.state_changes, b.state_changes) << what;
  EXPECT_EQ(a.messages_broadcast, b.messages_broadcast) << what;
  EXPECT_EQ(a.messages_event_driven, b.messages_event_driven) << what;
}

void expect_same_result(const PipelineResult& a, const PipelineResult& b,
                        bool compare_stats, const std::string& what) {
  EXPECT_EQ(a.safety, b.safety) << what;
  EXPECT_EQ(a.activation, b.activation) << what;

  ASSERT_EQ(a.blocks.size(), b.blocks.size()) << what;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].fault_count, b.blocks[i].fault_count) << what;
    EXPECT_EQ(a.blocks[i].unsafe_nonfaulty_count,
              b.blocks[i].unsafe_nonfaulty_count)
        << what;
    EXPECT_EQ(a.blocks[i].size(), b.blocks[i].size()) << what;
  }
  ASSERT_EQ(a.regions.size(), b.regions.size()) << what;
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].parent_block, b.regions[i].parent_block) << what;
    EXPECT_EQ(a.regions[i].fault_count, b.regions[i].fault_count) << what;
    EXPECT_EQ(a.regions[i].disabled_nonfaulty_count,
              b.regions[i].disabled_nonfaulty_count)
        << what;
    EXPECT_EQ(a.regions[i].size(), b.regions[i].size()) << what;
  }

  if (compare_stats) {
    expect_same_stats(a.safety_stats, b.safety_stats, what + " [safety]");
    expect_same_stats(a.activation_stats, b.activation_stats,
                      what + " [activation]");
  }
}

TEST(EngineEquivalenceTest, AllEnginesAgreeOnRandomInstances) {
  stats::Rng rng(20010423);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::int32_t>(rng.uniform_int(3, 20));
    const auto topology =
        trial % 2 == 0 ? mesh::Topology::Mesh : mesh::Topology::Torus;
    const mesh::Mesh2D m = mesh::Mesh2D::square(n, topology);
    // Fault density 0–30% of the machine.
    const auto fault_count = static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() * 3 / 10));
    const grid::CellSet faults =
        fault::uniform_random(m, fault_count, rng);
    const auto def = trial % 3 == 0 ? SafeUnsafeDef::Def2a
                                    : SafeUnsafeDef::Def2b;
    const std::string what = "trial " + std::to_string(trial) + ": " +
                             m.describe() + " f=" +
                             std::to_string(fault_count);

    PipelineOptions opts;
    opts.definition = def;
    opts.engine = Engine::Distributed;
    opts.run_mode = sim::RunMode::Dense;
    const PipelineResult dense = run_pipeline(faults, opts);

    opts.run_mode = sim::RunMode::Frontier;
    const PipelineResult frontier = run_pipeline(faults, opts);
    expect_same_result(dense, frontier, /*compare_stats=*/true,
                       what + " dense-vs-frontier");

    opts.engine = Engine::Reference;
    const PipelineResult reference = run_pipeline(faults, opts);
    expect_same_result(dense, reference, /*compare_stats=*/false,
                       what + " dense-vs-reference");

    // Labels must also match the standalone reference fixpoints.
    EXPECT_EQ(dense.safety, reference_safety(faults, def)) << what;
    EXPECT_EQ(dense.activation,
              reference_activation(faults, dense.safety))
        << what;

#ifdef OCP_HAVE_OPENMP
    // The OpenMP dense evaluator must be bit-identical — states, blocks,
    // regions, round counts and message counts — for any thread count.
    opts.engine = Engine::Distributed;
    opts.run_mode = sim::RunMode::Dense;
    opts.parallel = true;
    for (const int threads : {1, 2, 8}) {
      omp_set_num_threads(threads);
      const PipelineResult parallel = run_pipeline(faults, opts);
      expect_same_result(dense, parallel, /*compare_stats=*/true,
                         what + " dense-vs-parallel(threads=" +
                             std::to_string(threads) + ")");
    }
    omp_set_num_threads(omp_get_num_procs());
#endif
  }
}

}  // namespace
}  // namespace ocp::labeling
