// The paper's section-3 argument for Definition 3's non-recursive form:
// "Suppose the enabled/disabled rule is defined recursively ... unsafe
// nodes may have double status, i.e., two or more different
// enabled/disabled assignments are possible that both satisfy this
// definition." These tests *construct* the two consistent assignments on
// the Figure 2(b) configuration, proving the recursive definition is
// ill-defined, and show that Definition 3 (monotone, disabled start)
// resolves it deterministically — and why Figure 2(a) does not suffer the
// problem (its pocket has only one consistent assignment).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/fixtures.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;

/// Checks whether `act` is a consistent assignment under the *recursive*
/// definition: faulty -> disabled, safe -> enabled, and an unsafe nonfaulty
/// node is enabled iff it has two or more enabled neighbors (ghosts
/// enabled).
bool recursive_consistent(const grid::CellSet& faults,
                          const grid::NodeGrid<Safety>& safety,
                          const grid::NodeGrid<Activation>& act) {
  const mesh::Mesh2D& m = faults.topology();
  const auto activation_at = [&](Coord c) {
    if (m.contains(c)) return act[c];
    if (m.is_torus()) return act[m.wrap(c)];
    return Activation::Enabled;  // ghost
  };
  for (std::size_t i = 0; i < act.size(); ++i) {
    const Coord c = m.coord(i);
    if (faults.contains(c)) {
      if (act[c] != Activation::Disabled) return false;
      continue;
    }
    if (safety[c] == Safety::Safe) {
      if (act[c] != Activation::Enabled) return false;
      continue;
    }
    int enabled_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (activation_at(c.step(d)) == Activation::Enabled) {
        ++enabled_neighbors;
      }
    }
    const bool should_enable = enabled_neighbors >= 2;
    if (should_enable != (act[c] == Activation::Enabled)) return false;
  }
  return true;
}

TEST(DoubleStatusTest, Figure2bAdmitsTwoConsistentAssignments) {
  const auto fx = fault::figure2b();
  const auto result = run_pipeline(fx.faults);
  const Coord pocket[2] = {{4, 4}, {4, 5}};

  // Assignment A: Definition 3's outcome — the pocket disabled.
  EXPECT_TRUE(
      recursive_consistent(fx.faults, result.safety, result.activation));
  EXPECT_EQ(result.activation[pocket[0]], Activation::Disabled);

  // Assignment B: flip the pocket to enabled. (4,5) then has enabled
  // neighbors (4,6)-outside and (4,4); (4,4) has (4,5) and... only one —
  // check whether B is consistent: (4,4)'s neighbors are (3,4),(5,4),(4,3)
  // faulty and (4,5) enabled -> only 1 enabled -> NOT consistent for a 1x2
  // pocket. The paper's double-status block is 2 nodes wide; widen the
  // pocket accordingly below. For the 1x2 pocket only one assignment is
  // consistent:
  grid::NodeGrid<Activation> flipped = result.activation;
  flipped[pocket[0]] = Activation::Enabled;
  flipped[pocket[1]] = Activation::Enabled;
  EXPECT_FALSE(recursive_consistent(fx.faults, result.safety, flipped));
}

TEST(DoubleStatusTest, WidePocketHasGenuineDoubleStatus) {
  // A 2x2 healthy pocket at the top center of a 6x4 faulty block: each
  // pocket node has two pocket neighbors, so "all pocket enabled" is
  // self-supporting; "all pocket disabled" is too (each top node sees only
  // one enabled neighbor, the outside one). The recursive definition
  // accepts both — the double status of the paper's Figure 2(b) argument.
  const mesh::Mesh2D m(12, 9);
  grid::CellSet faults(m);
  for (std::int32_t x = 2; x <= 7; ++x) {
    for (std::int32_t y = 2; y <= 5; ++y) {
      if ((x == 4 || x == 5) && (y == 4 || y == 5)) continue;  // pocket
      faults.insert({x, y});
    }
  }
  const auto result = run_pipeline(faults);
  const Coord pocket[4] = {{4, 4}, {5, 4}, {4, 5}, {5, 5}};

  // Definition 3's outcome: all pocket nodes disabled (no double status).
  for (Coord c : pocket) {
    ASSERT_EQ(result.activation[c], Activation::Disabled);
  }
  EXPECT_TRUE(
      recursive_consistent(faults, result.safety, result.activation));

  // The flipped assignment is *also* consistent under the recursive rule.
  grid::NodeGrid<Activation> flipped = result.activation;
  for (Coord c : pocket) flipped[c] = Activation::Enabled;
  EXPECT_TRUE(recursive_consistent(faults, result.safety, flipped));
  EXPECT_NE(flipped, result.activation);
}

TEST(DoubleStatusTest, Figure2aHasUniqueAssignment) {
  // The corner pocket of Figure 2(a) is anchored by its two outside
  // neighbors: the all-disabled variant is NOT consistent (the corner node
  // must be enabled), so the recursive definition has a unique fixpoint
  // here and Definition 3 finds it.
  const auto fx = fault::figure2a();
  const auto result = run_pipeline(fx.faults);
  EXPECT_TRUE(
      recursive_consistent(fx.faults, result.safety, result.activation));

  grid::NodeGrid<Activation> all_disabled = result.activation;
  for (Coord c : {Coord{4, 4}, Coord{5, 4}, Coord{4, 5}, Coord{5, 5}}) {
    all_disabled[c] = Activation::Disabled;
  }
  EXPECT_FALSE(recursive_consistent(fx.faults, result.safety, all_disabled));
}

TEST(DoubleStatusTest, Definition3PicksTheLeastEnabledFixpoint) {
  // Among all consistent assignments, Definition 3 yields the one with the
  // fewest enabled unsafe nodes (monotone iteration from all-disabled
  // computes the least fixpoint) — checked on the wide-pocket instance by
  // comparing against the flipped assignment above.
  const mesh::Mesh2D m(12, 9);
  grid::CellSet faults(m);
  for (std::int32_t x = 2; x <= 7; ++x) {
    for (std::int32_t y = 2; y <= 5; ++y) {
      if ((x == 4 || x == 5) && (y == 4 || y == 5)) continue;
      faults.insert({x, y});
    }
  }
  const auto result = run_pipeline(faults);
  std::size_t enabled_def3 = 0;
  for (Activation a : result.activation) {
    enabled_def3 += a == Activation::Enabled ? 1u : 0u;
  }
  // The flipped assignment has 4 more enabled nodes.
  EXPECT_EQ(result.enabled_total(), 0u);
  EXPECT_GT(static_cast<std::size_t>(m.node_count()), enabled_def3);
}

}  // namespace
}  // namespace ocp::labeling
