// Phase one (safe/unsafe labeling) unit tests: Definitions 2a and 2b.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/reference.hpp"
#include "core/regions.hpp"
#include "core/safety_protocol.hpp"
#include "fault/generators.hpp"
#include "grid/connectivity.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

grid::NodeGrid<Safety> run_distributed(const grid::CellSet& faults,
                                       SafeUnsafeDef def,
                                       sim::RoundStats* stats = nullptr) {
  const SafetyProtocol proto(faults, def);
  auto result = sim::run_sync(faults.topology(), proto);
  if (stats) *stats = result.stats;
  grid::NodeGrid<Safety> out(faults.topology(), Safety::Safe);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_index(i) = result.states.at_index(i).safety;
  }
  return out;
}

TEST(SafetyTest, NoFaultsMeansAllSafe) {
  const Mesh2D m(8, 8);
  const grid::CellSet faults(m);
  sim::RoundStats stats;
  const auto safety = run_distributed(faults, SafeUnsafeDef::Def2b, &stats);
  for (Safety s : safety) EXPECT_EQ(s, Safety::Safe);
  EXPECT_EQ(stats.rounds_to_quiesce, 0);
}

TEST(SafetyTest, IsolatedFaultStaysAlone) {
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{4, 4}}};
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    const auto safety = run_distributed(faults, def);
    std::size_t unsafe = 0;
    for (Safety s : safety) unsafe += s == Safety::Unsafe ? 1u : 0u;
    EXPECT_EQ(unsafe, 1u) << to_string(def);
  }
}

TEST(SafetyTest, DiagonalFaultsMergeIntoSquare) {
  // The classic example: faults at (u) and (u+1, u+1) pull both in-between
  // nodes unsafe under both definitions.
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 3}, {4, 4}}};
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    const auto safety = run_distributed(faults, def);
    EXPECT_EQ((safety[{3, 4}]), Safety::Unsafe) << to_string(def);
    EXPECT_EQ((safety[{4, 3}]), Safety::Unsafe) << to_string(def);
    EXPECT_EQ((safety[{2, 3}]), Safety::Safe) << to_string(def);
  }
}

TEST(SafetyTest, SameDimensionPairDiffersBetweenDefinitions) {
  // A node with two unsafe neighbors along the same dimension is unsafe
  // under Definition 2a but safe under Definition 2b (the distinction the
  // paper highlights).
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 2}, {3, 4}}};
  const auto s2a = run_distributed(faults, SafeUnsafeDef::Def2a);
  const auto s2b = run_distributed(faults, SafeUnsafeDef::Def2b);
  EXPECT_EQ((s2a[{3, 3}]), Safety::Unsafe);
  EXPECT_EQ((s2b[{3, 3}]), Safety::Safe);
}

TEST(SafetyTest, FaultyNodesAreAlwaysUnsafe) {
  const Mesh2D m(10, 10);
  stats::Rng rng(1);
  const auto faults = fault::uniform_random(m, 20, rng);
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    const auto safety = run_distributed(faults, def);
    faults.for_each(
        [&](Coord c) { EXPECT_EQ(safety[c], Safety::Unsafe) << to_string(def); });
  }
}

TEST(SafetyTest, Def2aUnsafeSetContainsDef2bUnsafeSet) {
  // Definition 2a's rule fires whenever 2b's does, so its fixpoint dominates.
  const Mesh2D m(20, 20);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 30, rng);
    const auto s2a = reference_safety(faults, SafeUnsafeDef::Def2a);
    const auto s2b = reference_safety(faults, SafeUnsafeDef::Def2b);
    for (std::size_t i = 0; i < s2a.size(); ++i) {
      if (s2b.at_index(i) == Safety::Unsafe) {
        EXPECT_EQ(s2a.at_index(i), Safety::Unsafe) << "seed " << seed;
      }
    }
  }
}

TEST(SafetyTest, DistributedMatchesReferenceOnRandomInstances) {
  const Mesh2D m(30, 30);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 45, rng);
    for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
      EXPECT_EQ(run_distributed(faults, def), reference_safety(faults, def))
          << "seed " << seed << " " << to_string(def);
    }
  }
}

TEST(SafetyTest, GhostBoundaryDoesNotLeakUnsafe) {
  // A fault at the mesh corner: ghost neighbors are safe, so the corner's
  // mesh neighbors each see only one unsafe neighbor and stay safe.
  const Mesh2D m(6, 6);
  const grid::CellSet faults{m, {{0, 0}}};
  const auto safety = run_distributed(faults, SafeUnsafeDef::Def2b);
  EXPECT_EQ((safety[{1, 0}]), Safety::Safe);
  EXPECT_EQ((safety[{0, 1}]), Safety::Safe);
}

TEST(SafetyTest, CornerDiagonalPairMergesAtBoundary) {
  const Mesh2D m(6, 6);
  const grid::CellSet faults{m, {{0, 0}, {1, 1}}};
  const auto safety = run_distributed(faults, SafeUnsafeDef::Def2b);
  EXPECT_EQ((safety[{1, 0}]), Safety::Unsafe);
  EXPECT_EQ((safety[{0, 1}]), Safety::Unsafe);
}

TEST(SafetyTest, TorusWrapsUnsafePropagation) {
  // Faults straddling the seam behave exactly like adjacent interior faults.
  const Mesh2D m(8, 8, mesh::Topology::Torus);
  const grid::CellSet faults{m, {{7, 3}, {0, 4}}};  // diagonal across seam
  const auto safety = run_distributed(faults, SafeUnsafeDef::Def2b);
  EXPECT_EQ((safety[{7, 4}]), Safety::Unsafe);
  EXPECT_EQ((safety[{0, 3}]), Safety::Unsafe);
}

TEST(SafetyTest, RoundsBoundedByLargestBlockDiameter) {
  const Mesh2D m(30, 30);
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 60, rng);
    sim::RoundStats stats;
    const auto safety = run_distributed(faults, SafeUnsafeDef::Def2b, &stats);
    // Find the largest unsafe-component diameter.
    std::int32_t max_diam = 0;
    for (const auto& comp : grid::connected_components(unsafe_cells(safety))) {
      max_diam = std::max(max_diam, comp.region.diameter());
    }
    EXPECT_LE(stats.rounds_to_quiesce, std::max(max_diam, 1)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ocp::labeling
