// Online maintenance: incremental relabeling equals full recomputation.
#include <gtest/gtest.h>

#include "core/maintenance.hpp"
#include "fault/generators.hpp"
#include "geometry/convexity.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(MaintenanceTest, StartsEquivalentToPipeline) {
  const Mesh2D m(16, 16);
  stats::Rng rng(1);
  const auto faults = fault::uniform_random(m, 20, rng);
  const MaintainedLabeling live(faults);
  PipelineOptions opts{.engine = Engine::Reference};
  const auto batch = run_pipeline(faults, opts);
  EXPECT_EQ(live.safety(), batch.safety);
  EXPECT_EQ(live.activation(), batch.activation);
  EXPECT_EQ(live.blocks().size(), batch.blocks.size());
  EXPECT_EQ(live.regions().size(), batch.regions.size());
}

TEST(MaintenanceTest, IncrementalEqualsRecomputeOnRandomSequences) {
  const Mesh2D m(20, 20);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    stats::Rng rng(seed);
    MaintainedLabeling live(grid::CellSet(m),
                            seed % 2 == 0 ? SafeUnsafeDef::Def2b
                                          : SafeUnsafeDef::Def2a);
    grid::CellSet accumulated(m);
    for (int event = 0; event < 30; ++event) {
      const Coord node = m.coord(static_cast<std::size_t>(
          rng.uniform_int(0, m.node_count() - 1)));
      live.add_fault(node);
      accumulated.insert(node);

      PipelineOptions opts{.definition = seed % 2 == 0
                               ? SafeUnsafeDef::Def2b
                               : SafeUnsafeDef::Def2a,
                           .engine = Engine::Reference};
      const auto batch = run_pipeline(accumulated, opts);
      ASSERT_EQ(live.safety(), batch.safety)
          << "seed " << seed << " event " << event;
      ASSERT_EQ(live.activation(), batch.activation)
          << "seed " << seed << " event " << event;
      ASSERT_EQ(live.blocks().size(), batch.blocks.size());
      ASSERT_EQ(live.regions().size(), batch.regions.size());
    }
  }
}

TEST(MaintenanceTest, DuplicateFaultIsNoOp) {
  const Mesh2D m(10, 10);
  MaintainedLabeling live(grid::CellSet{m, {{4, 4}}});
  EXPECT_TRUE(live.add_fault({4, 4}).no_op());
  EXPECT_EQ(live.faults().size(), 1u);
}

TEST(MaintenanceTest, OutOfMeshFaultIsNoOp) {
  const Mesh2D m(10, 10);
  MaintainedLabeling live{grid::CellSet(m)};
  EXPECT_TRUE(live.add_fault({-1, 3}).no_op());
  EXPECT_TRUE(live.add_fault({10, 3}).no_op());
  EXPECT_TRUE(live.faults().empty());
}

TEST(MaintenanceTest, DiagonalSecondFaultMergesBlocks) {
  const Mesh2D m(12, 12);
  MaintainedLabeling live(grid::CellSet{m, {{5, 5}}});
  ASSERT_EQ(live.blocks().size(), 1u);
  const EventDelta delta = live.add_fault({6, 6});
  // The new fault plus the two bridging nodes turn unsafe.
  EXPECT_EQ(delta.safety_changed, 3u);
  // The dirty extent is the merged 2x2 block.
  EXPECT_EQ(delta.dirty_cells.size(), 4u);
  EXPECT_FALSE(delta.no_op());
  ASSERT_EQ(live.blocks().size(), 1u);
  EXPECT_EQ(live.blocks()[0].size(), 4u);
  EXPECT_TRUE(live.blocks()[0].region().is_rectangle());
}

TEST(MaintenanceTest, DeltaCoversEveryFlippedCell) {
  // The dirty extent must be a superset of the actual label flips — it is
  // what the serving layer uses to decide which snapshot pages to copy.
  const Mesh2D m(20, 20);
  stats::Rng rng(17);
  MaintainedLabeling live{grid::CellSet(m)};
  for (int event = 0; event < 40; ++event) {
    const auto before_safety = live.safety();
    const auto before_activation = live.activation();
    const Coord node = m.coord(
        static_cast<std::size_t>(rng.uniform_int(0, m.node_count() - 1)));
    const bool duplicate = live.faults().contains(node);
    const EventDelta delta = live.add_fault(node);
    if (duplicate) {
      ASSERT_TRUE(delta.no_op());
      continue;
    }
    grid::CellSet dirty(m);
    for (const Coord c : delta.dirty_cells) dirty.insert(c);
    ASSERT_TRUE(dirty.contains(node));
    std::size_t safety_flips = 0;
    std::size_t activation_flips = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
         ++i) {
      const bool s = live.safety().at_index(i) != before_safety.at_index(i);
      const bool a =
          live.activation().at_index(i) != before_activation.at_index(i);
      safety_flips += s ? 1 : 0;
      activation_flips += a ? 1 : 0;
      if (s || a) {
        ASSERT_TRUE(dirty.contains_index(i)) << "event " << event;
      }
    }
    ASSERT_EQ(delta.safety_changed, safety_flips) << "event " << event;
    ASSERT_EQ(delta.activation_changed, activation_flips)
        << "event " << event;
  }
}

TEST(MaintenanceTest, NewFaultCanRevokeEnabledStatus) {
  // Nodes activated by phase two can lose their support when a later fault
  // arrives; the maintained labeling must reflect that (this is why phase
  // two cannot be patched monotonically).
  const Mesh2D m(12, 12);
  MaintainedLabeling live(grid::CellSet{m, {{5, 5}, {6, 6}}});
  ASSERT_EQ((live.activation()[{5, 6}]), Activation::Enabled);
  ASSERT_EQ((live.activation()[{6, 5}]), Activation::Enabled);

  // Wall the 2x2 block in from the west and south; the bridging cells lose
  // their enabled neighbors one by one.
  for (Coord c : {Coord{4, 5}, Coord{4, 6}, Coord{5, 7}, Coord{6, 7},
                  Coord{7, 5}, Coord{5, 4}, Coord{6, 4}, Coord{7, 6},
                  Coord{4, 4}, Coord{7, 7}, Coord{4, 7}, Coord{7, 4}}) {
    live.add_fault(c);
  }
  EXPECT_EQ((live.activation()[{5, 6}]), Activation::Disabled);
  EXPECT_EQ((live.activation()[{6, 5}]), Activation::Disabled);
}

TEST(MaintenanceTest, RegionsStayConvexThroughEventStream) {
  const Mesh2D m(24, 24);
  stats::Rng rng(9);
  MaintainedLabeling live{grid::CellSet(m)};
  for (int event = 0; event < 60; ++event) {
    live.add_fault(m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1))));
    for (const auto& region : live.regions()) {
      ASSERT_TRUE(geom::is_orthogonal_convex(region.region()));
    }
    for (const auto& block : live.blocks()) {
      ASSERT_TRUE(block.region().is_rectangle());
    }
  }
}

TEST(MaintenanceTest, WorksOnTorus) {
  const Mesh2D m(10, 10, mesh::Topology::Torus);
  MaintainedLabeling live{grid::CellSet(m)};
  live.add_fault({9, 5});
  live.add_fault({0, 6});  // diagonal across the seam
  ASSERT_EQ(live.blocks().size(), 1u);
  EXPECT_EQ(live.blocks()[0].size(), 4u);
}

}  // namespace
}  // namespace ocp::labeling
