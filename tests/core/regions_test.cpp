// Faulty-block and disabled-region extraction tests.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(RegionsTest, NoFaultsNoRegions) {
  const Mesh2D m(10, 10);
  const auto result = run_pipeline(grid::CellSet(m));
  EXPECT_TRUE(result.blocks.empty());
  EXPECT_TRUE(result.regions.empty());
  EXPECT_EQ(result.unsafe_nonfaulty_total(), 0u);
  EXPECT_EQ(result.enabled_total(), 0u);
}

TEST(RegionsTest, SingleFaultSingletonBlockAndRegion) {
  const Mesh2D m(10, 10);
  const auto result = run_pipeline(grid::CellSet{m, {{5, 5}}});
  ASSERT_EQ(result.blocks.size(), 1u);
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 1u);
  EXPECT_EQ(result.blocks[0].fault_count, 1u);
  EXPECT_EQ(result.blocks[0].unsafe_nonfaulty_count, 0u);
  EXPECT_EQ(result.regions[0].size(), 1u);
  EXPECT_EQ(result.regions[0].parent_block, 0u);
}

TEST(RegionsTest, BlockCountsPartitionBlockSize) {
  const Mesh2D m(20, 20);
  stats::Rng rng(1);
  const auto faults = fault::uniform_random(m, 30, rng);
  const auto result = run_pipeline(faults);
  for (const auto& block : result.blocks) {
    EXPECT_EQ(block.fault_count + block.unsafe_nonfaulty_count, block.size());
  }
}

TEST(RegionsTest, BlocksPartitionUnsafeSet) {
  const Mesh2D m(20, 20);
  stats::Rng rng(2);
  const auto faults = fault::uniform_random(m, 40, rng);
  const auto result = run_pipeline(faults);
  std::size_t total = 0;
  for (const auto& block : result.blocks) total += block.size();
  EXPECT_EQ(total, unsafe_cells(result.safety).size());
}

TEST(RegionsTest, RegionsPartitionDisabledSet) {
  const Mesh2D m(20, 20);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 40, rng);
  const auto result = run_pipeline(faults);
  std::size_t total = 0;
  for (const auto& region : result.regions) total += region.size();
  EXPECT_EQ(total, disabled_cells(result.activation).size());
}

TEST(RegionsTest, EveryFaultLandsInExactlyOneRegion) {
  const Mesh2D m(24, 24);
  stats::Rng rng(4);
  const auto faults = fault::uniform_random(m, 50, rng);
  const auto result = run_pipeline(faults);
  std::size_t region_faults = 0;
  for (const auto& region : result.regions) region_faults += region.fault_count;
  EXPECT_EQ(region_faults, faults.size());
  std::size_t block_faults = 0;
  for (const auto& block : result.blocks) block_faults += block.fault_count;
  EXPECT_EQ(block_faults, faults.size());
}

TEST(RegionsTest, ParentBlockContainsItsRegions) {
  const Mesh2D m(24, 24);
  stats::Rng rng(5);
  const auto faults = fault::uniform_random(m, 60, rng);
  const auto result = run_pipeline(faults);
  for (const auto& region : result.regions) {
    ASSERT_LT(region.parent_block, result.blocks.size());
    const auto& parent = result.blocks[region.parent_block].region();
    for (Coord c : region.component.cells()) {
      EXPECT_TRUE(parent.contains(c));
    }
  }
}

TEST(RegionsTest, EnabledTotalsAreConsistent) {
  const Mesh2D m(24, 24);
  stats::Rng rng(6);
  const auto faults = fault::uniform_random(m, 45, rng);
  const auto result = run_pipeline(faults);
  EXPECT_EQ(result.enabled_total() + result.disabled_nonfaulty_total(),
            result.unsafe_nonfaulty_total());
  // Cross-check against a direct count of unsafe-but-enabled cells.
  std::size_t direct = 0;
  for (std::size_t i = 0; i < result.safety.size(); ++i) {
    if (result.safety.at_index(i) == Safety::Unsafe &&
        result.activation.at_index(i) == Activation::Enabled) {
      ++direct;
    }
  }
  EXPECT_EQ(result.enabled_total(), direct);
}

TEST(RegionsTest, MismatchedGridsThrow) {
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{4, 4}}};
  // Activation grid claims a disabled cell where safety says safe ->
  // extract_disabled_regions must reject the pair.
  grid::NodeGrid<Safety> safety(m, Safety::Safe);
  grid::NodeGrid<Activation> act(m, Activation::Enabled);
  act[{2, 2}] = Activation::Disabled;
  EXPECT_THROW(extract_disabled_regions(faults, act, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ocp::labeling
