// Pipeline orchestration tests: engines agree, options are honored, stats
// are populated.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"

namespace ocp::labeling {
namespace {

using mesh::Mesh2D;

TEST(PipelineTest, DistributedAndReferenceEnginesAgree) {
  const Mesh2D m(32, 32);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 50, rng);
    for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
      PipelineOptions dist{.definition = def, .engine = Engine::Distributed};
      PipelineOptions ref{.definition = def, .engine = Engine::Reference};
      const auto a = run_pipeline(faults, dist);
      const auto b = run_pipeline(faults, ref);
      EXPECT_EQ(a.safety, b.safety) << "seed " << seed;
      EXPECT_EQ(a.activation, b.activation) << "seed " << seed;
      EXPECT_EQ(a.blocks.size(), b.blocks.size());
      EXPECT_EQ(a.regions.size(), b.regions.size());
    }
  }
}

TEST(PipelineTest, DenseAndFrontierModesAgree) {
  const Mesh2D m(24, 24);
  stats::Rng rng(9);
  const auto faults = fault::uniform_random(m, 40, rng);
  PipelineOptions dense{.run_mode = sim::RunMode::Dense};
  PipelineOptions frontier{.run_mode = sim::RunMode::Frontier};
  const auto a = run_pipeline(faults, dense);
  const auto b = run_pipeline(faults, frontier);
  EXPECT_EQ(a.safety, b.safety);
  EXPECT_EQ(a.activation, b.activation);
  EXPECT_EQ(a.safety_stats.rounds_to_quiesce,
            b.safety_stats.rounds_to_quiesce);
  EXPECT_EQ(a.activation_stats.rounds_to_quiesce,
            b.activation_stats.rounds_to_quiesce);
}

TEST(PipelineTest, DistributedEngineReportsRounds) {
  const Mesh2D m(16, 16);
  const grid::CellSet faults{m, {{5, 5}, {6, 6}}};  // diagonal pair
  const auto result = run_pipeline(faults);
  EXPECT_GE(result.safety_stats.rounds_to_quiesce, 1);
  EXPECT_GE(result.activation_stats.rounds_to_quiesce, 1);
  EXPECT_GT(result.safety_stats.messages_broadcast, 0u);
}

TEST(PipelineTest, ReferenceEngineZeroesStats) {
  const Mesh2D m(16, 16);
  const grid::CellSet faults{m, {{5, 5}, {6, 6}}};
  PipelineOptions opts{.engine = Engine::Reference};
  const auto result = run_pipeline(faults, opts);
  EXPECT_EQ(result.safety_stats.rounds_to_quiesce, 0);
  EXPECT_EQ(result.safety_stats.messages_broadcast, 0u);
}

TEST(PipelineTest, DefinitionOptionIsHonored) {
  const Mesh2D m(10, 10);
  const grid::CellSet faults{m, {{3, 2}, {3, 4}}};  // same-dimension pair
  PipelineOptions def2a{.definition = SafeUnsafeDef::Def2a};
  PipelineOptions def2b{.definition = SafeUnsafeDef::Def2b};
  const auto a = run_pipeline(faults, def2a);
  const auto b = run_pipeline(faults, def2b);
  EXPECT_EQ(a.blocks.size(), 1u);  // bridged by (3,3)
  EXPECT_EQ(b.blocks.size(), 2u);  // split
}

TEST(PipelineTest, WorksOnTorus) {
  const Mesh2D m(16, 16, mesh::Topology::Torus);
  stats::Rng rng(11);
  const auto faults = fault::uniform_random(m, 20, rng);
  const auto result = run_pipeline(faults);
  std::size_t block_faults = 0;
  for (const auto& b : result.blocks) block_faults += b.fault_count;
  EXPECT_EQ(block_faults, faults.size());
}

TEST(PipelineTest, FullyFaultyMachineIsOneBlock) {
  const Mesh2D m(4, 4);
  grid::CellSet faults(m);
  for (std::size_t i = 0; i < 16; ++i) faults.insert(m.coord(i));
  const auto result = run_pipeline(faults);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 16u);
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].size(), 16u);
  EXPECT_EQ(result.enabled_total(), 0u);
}

}  // namespace
}  // namespace ocp::labeling
