// Phase two (enabled/disabled labeling, Definition 3) unit tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/activation_protocol.hpp"
#include "core/reference.hpp"
#include "core/regions.hpp"
#include "fault/generators.hpp"
#include "grid/connectivity.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

grid::NodeGrid<Activation> run_distributed(const grid::CellSet& faults,
                                           const grid::NodeGrid<Safety>& safety,
                                           sim::RoundStats* stats = nullptr) {
  const ActivationProtocol proto(faults, safety);
  auto result = sim::run_sync(faults.topology(), proto);
  if (stats) *stats = result.stats;
  grid::NodeGrid<Activation> out(faults.topology(), Activation::Enabled);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_index(i) = result.states.at_index(i).activation;
  }
  return out;
}

TEST(ActivationTest, SafeNodesAreEnabledFaultyDisabled) {
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 3}, {4, 4}}};
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  const auto act = run_distributed(faults, safety);
  EXPECT_EQ((act[{0, 0}]), Activation::Enabled);
  EXPECT_EQ((act[{3, 3}]), Activation::Disabled);
  EXPECT_EQ((act[{4, 4}]), Activation::Disabled);
}

TEST(ActivationTest, DiagonalPairBlockFreesBothNonfaultyCells) {
  // The 2x2 block from two diagonal faults: each nonfaulty cell has two
  // enabled neighbors outside the block and gets activated.
  const Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 3}, {4, 4}}};
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  const auto act = run_distributed(faults, safety);
  EXPECT_EQ((act[{3, 4}]), Activation::Enabled);
  EXPECT_EQ((act[{4, 3}]), Activation::Enabled);
}

TEST(ActivationTest, FaultyNodesNeverEnable) {
  const Mesh2D m(12, 12);
  stats::Rng rng(2);
  const auto faults = fault::uniform_random(m, 20, rng);
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  const auto act = run_distributed(faults, safety);
  faults.for_each([&](Coord c) { EXPECT_EQ(act[c], Activation::Disabled); });
}

TEST(ActivationTest, MonotoneSubsetOfUnsafe) {
  // Disabled cells are exactly a subset of unsafe cells; safe cells are
  // always enabled.
  const Mesh2D m(16, 16);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 30, rng);
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2a);
  const auto act = run_distributed(faults, safety);
  for (std::size_t i = 0; i < act.size(); ++i) {
    if (act.at_index(i) == Activation::Disabled) {
      EXPECT_EQ(safety.at_index(i), Safety::Unsafe);
    }
    if (safety.at_index(i) == Safety::Safe) {
      EXPECT_EQ(act.at_index(i), Activation::Enabled);
    }
  }
}

TEST(ActivationTest, DistributedMatchesReferenceOnRandomInstances) {
  const Mesh2D m(30, 30);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 50, rng);
    for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
      const auto safety = reference_safety(faults, def);
      EXPECT_EQ(run_distributed(faults, safety),
                reference_activation(faults, safety))
          << "seed " << seed << " " << to_string(def);
    }
  }
}

TEST(ActivationTest, GhostNeighborsCountAsEnabledSupport) {
  // A 2x2 block in the mesh corner: the corner-most nonfaulty cell of the
  // block still sees two enabled (ghost) neighbors and activates.
  const Mesh2D m(6, 6);
  const grid::CellSet faults{m, {{0, 1}, {1, 0}}};
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  ASSERT_EQ((safety[{0, 0}]), Safety::Unsafe);
  ASSERT_EQ((safety[{1, 1}]), Safety::Unsafe);
  const auto act = run_distributed(faults, safety);
  // (0,0) has ghost west + ghost south -> enabled; (1,1) has east + north
  // mesh neighbors enabled -> enabled.
  EXPECT_EQ((act[{0, 0}]), Activation::Enabled);
  EXPECT_EQ((act[{1, 1}]), Activation::Enabled);
}

TEST(ActivationTest, SingleContactPocketStaysDisabled) {
  // A healthy cell surrounded by faults on three sides (one link to the
  // outside) cannot collect two enabled neighbors.
  const Mesh2D m(8, 8);
  grid::CellSet faults{m, {{2, 2}, {3, 2}, {4, 2}, {2, 3}, {4, 3},
                           {2, 4}, {3, 4}, {4, 4}}};
  faults.erase({3, 4});  // open the top: pocket (3,3) sees one enabled nbr
  const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
  ASSERT_EQ((safety[{3, 3}]), Safety::Unsafe);
  ASSERT_EQ((safety[{3, 4}]), Safety::Unsafe);
  const auto act = run_distributed(faults, safety);
  EXPECT_EQ((act[{3, 3}]), Activation::Disabled);
  EXPECT_EQ((act[{3, 4}]), Activation::Disabled);
}

TEST(ActivationTest, PhaseTwoRoundsAtMostPhaseOneDiameterBound) {
  const Mesh2D m(24, 24);
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 40, rng);
    const auto safety = reference_safety(faults, SafeUnsafeDef::Def2b);
    sim::RoundStats stats;
    run_distributed(faults, safety, &stats);
    std::int32_t max_diam = 0;
    for (const auto& comp : grid::connected_components(unsafe_cells(safety))) {
      max_diam = std::max(max_diam, comp.region.diameter());
    }
    EXPECT_LE(stats.rounds_to_quiesce, std::max(max_diam, 1))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ocp::labeling
