// Exhaustive verification on small machines: every fault pattern with up to
// three faults (and every two-fault pattern on 4x4) is checked against all
// section-3/4 claims. Unlike the randomized sweeps, these tests cannot miss
// a corner case within their universe.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "geometry/convexity.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

/// Checks every claim on one instance; returns a description of the first
/// violation, empty when clean.
std::string check_instance(const grid::CellSet& faults, SafeUnsafeDef def) {
  PipelineOptions opts{.definition = def};
  const auto result = run_pipeline(faults, opts);

  for (const auto& block : result.blocks) {
    if (!block.region().is_rectangle()) return "non-rectangular block";
  }
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < result.blocks.size(); ++j) {
      std::int32_t dist = std::numeric_limits<std::int32_t>::max();
      for (Coord u : result.blocks[i].component.cells()) {
        for (Coord v : result.blocks[j].component.cells()) {
          dist = std::min(dist, faults.topology().distance(u, v));
        }
      }
      const std::int32_t min_dist = def == SafeUnsafeDef::Def2a ? 3 : 2;
      if (dist < min_dist) return "blocks too close";
    }
  }
  for (const auto& region : result.regions) {
    // A region wrapping a whole torus ring has no planar outside along that
    // dimension; the paper's corner/minimality analysis presupposes regions
    // smaller than the ring (always true at its scale: f <= 1% of nodes).
    // Such degenerate wraps only arise on these tiny exhaustive tori.
    const geom::Rect bbox = region.region().bounding_box();
    if (faults.topology().is_torus() &&
        (bbox.width() >= faults.topology().width() ||
         bbox.height() >= faults.topology().height())) {
      continue;
    }
    if (!geom::is_orthogonal_convex(region.region())) {
      return "concave disabled region";
    }
    if (!region.region().is_connected(geom::Connectivity::Eight)) {
      return "disconnected disabled region";
    }
    // Lemma 1 + Theorem 2.
    std::vector<Coord> fault_frame;
    const auto frame = region.region().cells();
    for (std::size_t i = 0; i < frame.size(); ++i) {
      const bool is_fault =
          faults.contains(region.component.cells()[i]);
      if (is_fault) fault_frame.push_back(frame[i]);
      if (geom::is_corner_node(region.region(), frame[i]) && !is_fault) {
        return "nonfaulty corner node";
      }
    }
    if (geom::rectilinear_convex_closure(geom::Region(fault_frame)) !=
        region.region()) {
      return "region is not the closure of its faults";
    }
  }
  // Status lattice.
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(faults.topology().node_count()); ++i) {
    const Coord c = faults.topology().coord(i);
    if (faults.contains(c)) {
      if (result.safety[c] != Safety::Unsafe) return "faulty but safe";
      if (result.activation[c] != Activation::Disabled) {
        return "faulty but enabled";
      }
    }
    if (result.activation[c] == Activation::Disabled &&
        result.safety[c] != Safety::Unsafe) {
      return "disabled but safe";
    }
  }
  return {};
}

void exhaust(const Mesh2D& m, std::size_t max_faults) {
  const auto n = static_cast<std::size_t>(m.node_count());
  // Enumerate all fault sets of size 1..max_faults by index combinations.
  std::vector<std::size_t> pick;
  const auto recurse = [&](auto&& self, std::size_t start) -> void {
    if (!pick.empty()) {
      grid::CellSet faults(m);
      for (std::size_t i : pick) faults.insert(m.coord(i));
      for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
        const std::string violation = check_instance(faults, def);
        if (!violation.empty()) {
          std::string cells;
          for (std::size_t i : pick) {
            cells += mesh::to_string(m.coord(i)) + " ";
          }
          FAIL() << violation << " on " << m.describe() << " faults "
                 << cells << to_string(def);
        }
      }
    }
    if (pick.size() == max_faults) return;
    for (std::size_t i = start; i < n; ++i) {
      pick.push_back(i);
      self(self, i + 1);
      pick.pop_back();
    }
  };
  recurse(recurse, 0);
}

TEST(ExhaustiveSmallMesh, AllPatternsUpTo3FaultsOn3x3Mesh) {
  exhaust(Mesh2D(3, 3), 3);
}

TEST(ExhaustiveSmallMesh, AllPatternsUpTo3FaultsOn4x3Mesh) {
  exhaust(Mesh2D(4, 3), 3);
}

TEST(ExhaustiveSmallMesh, AllPatternsUpTo2FaultsOn5x5Mesh) {
  exhaust(Mesh2D(5, 5), 2);
}

TEST(ExhaustiveSmallMesh, AllPatternsUpTo3FaultsOn4x4Torus) {
  exhaust(Mesh2D(4, 4, Topology::Torus), 3);
}

TEST(ExhaustiveSmallMesh, AllPatternsUpTo2FaultsOn5x4Torus) {
  exhaust(Mesh2D(5, 4, Topology::Torus), 2);
}

TEST(ExhaustiveSmallMesh, DegenerateOneByNMeshes) {
  // 1xN meshes: every nonfaulty node has at most two neighbors, both along
  // the same dimension — under Definition 2b no nonfaulty node can ever be
  // unsafe, so blocks are exactly the fault runs.
  for (std::int32_t len : {1, 2, 5, 9}) {
    const Mesh2D m(len, 1);
    exhaust(m, std::min<std::size_t>(3, static_cast<std::size_t>(len)));
  }
}

}  // namespace
}  // namespace ocp::labeling
