// Fault removal: incremental repair equals full recomputation. The fuzz
// sweep drives random interleavings of add_fault/remove_fault and checks
// the maintained labeling bit-for-bit against a from-scratch pipeline run
// on the accumulated fault set after every event.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/maintenance.hpp"
#include "fault/generators.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

void expect_equivalent(const MaintainedLabeling& live,
                       const grid::CellSet& faults, SafeUnsafeDef def,
                       const char* context) {
  PipelineOptions opts{.definition = def, .engine = Engine::Reference};
  const auto batch = run_pipeline(faults, opts);
  ASSERT_EQ(live.safety(), batch.safety) << context;
  ASSERT_EQ(live.activation(), batch.activation) << context;
  ASSERT_EQ(live.blocks().size(), batch.blocks.size()) << context;
  ASSERT_EQ(live.regions().size(), batch.regions.size()) << context;
  for (std::size_t r = 0; r < batch.regions.size(); ++r) {
    ASSERT_EQ(live.regions()[r].size(), batch.regions[r].size()) << context;
    ASSERT_EQ(live.regions()[r].fault_count, batch.regions[r].fault_count)
        << context;
    ASSERT_EQ(live.regions()[r].parent_block, batch.regions[r].parent_block)
        << context;
    ASSERT_EQ(live.regions()[r].region(), batch.regions[r].region())
        << context;
  }
  for (std::size_t b = 0; b < batch.blocks.size(); ++b) {
    ASSERT_EQ(live.blocks()[b].size(), batch.blocks[b].size()) << context;
    ASSERT_EQ(live.blocks()[b].region(), batch.blocks[b].region()) << context;
  }
  // Maintained planes the serving layer reads directly.
  ASSERT_EQ(live.disabled(), disabled_cells(batch.activation)) << context;
  const mesh::Mesh2D& m = faults.topology();
  grid::NodeGrid<std::int32_t> expected_keys(m, -1);
  for (const auto& region : batch.regions) {
    std::size_t key = static_cast<std::size_t>(m.node_count());
    for (const Coord c : region.component.cells()) {
      key = std::min(key, m.index(c));
    }
    for (const Coord c : region.component.cells()) {
      expected_keys[c] = static_cast<std::int32_t>(key);
    }
  }
  ASSERT_EQ(live.region_keys(), expected_keys) << context;
}

TEST(MaintenanceRemovalTest, RemoveOfNonFaultyOrOutOfMeshIsNoOp) {
  const Mesh2D m(10, 10);
  MaintainedLabeling live(grid::CellSet{m, {{4, 4}}});
  EXPECT_TRUE(live.remove_fault({5, 5}).no_op());   // healthy node
  EXPECT_TRUE(live.remove_fault({-1, 3}).no_op());  // outside the machine
  EXPECT_TRUE(live.remove_fault({10, 3}).no_op());
  EXPECT_EQ(live.faults().size(), 1u);
}

TEST(MaintenanceRemovalTest, AddThenRemoveRestoresPristineMachine) {
  const Mesh2D m(12, 12);
  MaintainedLabeling live{grid::CellSet(m)};
  (void)live.add_fault({5, 5});
  ASSERT_EQ(live.blocks().size(), 1u);
  const EventDelta delta = live.remove_fault({5, 5});
  EXPECT_EQ(delta.safety_changed, 1u);  // the node itself went unsafe -> safe
  EXPECT_EQ(delta.dirty_cells.size(), 1u);  // the old block was just the node
  EXPECT_TRUE(live.faults().empty());
  EXPECT_TRUE(live.blocks().empty());
  EXPECT_TRUE(live.regions().empty());
  expect_equivalent(live, grid::CellSet(m), SafeUnsafeDef::Def2b, "pristine");
}

TEST(MaintenanceRemovalTest, RepairSplitsAMergedBlock) {
  // Two diagonal faults form one 2x2 block; repairing one must shrink the
  // block back to the single remaining fault.
  const Mesh2D m(12, 12);
  MaintainedLabeling live(grid::CellSet{m, {{5, 5}, {6, 6}}});
  ASSERT_EQ(live.blocks().size(), 1u);
  ASSERT_EQ(live.blocks()[0].size(), 4u);

  const EventDelta delta = live.remove_fault({6, 6});
  // The repaired node and the two bridging nodes return to safe.
  EXPECT_EQ(delta.safety_changed, 3u);
  // The dirty extent is the old 2x2 block footprint.
  EXPECT_EQ(delta.dirty_cells.size(), 4u);
  ASSERT_EQ(live.blocks().size(), 1u);
  EXPECT_EQ(live.blocks()[0].size(), 1u);
  expect_equivalent(live, grid::CellSet{m, {{5, 5}}}, SafeUnsafeDef::Def2b,
                    "split");
}

TEST(MaintenanceRemovalTest, RepairCanReenableSacrificedNodes) {
  // Build the walled configuration that disables the bridging nodes of a
  // diagonal pair (see MaintenanceTest.NewFaultCanRevokeEnabledStatus),
  // then repair the wall fault by fault: the sacrificed nodes must win
  // their enabled status back once support returns.
  const Mesh2D m(12, 12);
  MaintainedLabeling live(grid::CellSet{m, {{5, 5}, {6, 6}}});
  const std::vector<Coord> wall = {{4, 5}, {4, 6}, {5, 7}, {6, 7},
                                   {7, 5}, {5, 4}, {6, 4}, {7, 6},
                                   {4, 4}, {7, 7}, {4, 7}, {7, 4}};
  for (const Coord c : wall) (void)live.add_fault(c);
  ASSERT_EQ((live.activation()[{5, 6}]), Activation::Disabled);
  ASSERT_EQ((live.activation()[{6, 5}]), Activation::Disabled);

  for (const Coord c : wall) (void)live.remove_fault(c);
  // Back to the bare diagonal pair, whose bridging nodes are enabled.
  EXPECT_EQ((live.activation()[{5, 6}]), Activation::Enabled);
  EXPECT_EQ((live.activation()[{6, 5}]), Activation::Enabled);
  expect_equivalent(live, grid::CellSet{m, {{5, 5}, {6, 6}}},
                    SafeUnsafeDef::Def2b, "unwalled");
}

TEST(MaintenanceRemovalTest, FuzzedInterleavingsMatchPipelineBitForBit) {
  for (const auto topology : {mesh::Topology::Mesh, mesh::Topology::Torus}) {
    const Mesh2D m(16, 16, topology);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const SafeUnsafeDef def =
          seed % 2 == 0 ? SafeUnsafeDef::Def2b : SafeUnsafeDef::Def2a;
      stats::Rng rng(seed + 100);
      MaintainedLabeling live(grid::CellSet(m), def);
      grid::CellSet accumulated(m);
      for (int event = 0; event < 40; ++event) {
        // Bias toward adds so the machine carries a meaningful fault load;
        // removals pick a random currently-faulty node.
        const bool remove = !accumulated.empty() && rng.uniform() < 0.4;
        if (remove) {
          const auto members = accumulated.to_vector();
          const Coord node = members[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(members.size()) - 1))];
          live.remove_fault(node);
          accumulated.erase(node);
        } else {
          const Coord node = m.coord(static_cast<std::size_t>(
              rng.uniform_int(0, m.node_count() - 1)));
          live.add_fault(node);
          accumulated.insert(node);
        }
        ASSERT_EQ(live.faults(), accumulated);
        const std::string context =
            "topology " + std::to_string(static_cast<int>(topology)) +
            " seed " + std::to_string(seed) + " event " +
            std::to_string(event);
        expect_equivalent(live, accumulated, def, context.c_str());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(MaintenanceRemovalTest, DrainToEmptyRestoresAllSafe) {
  const Mesh2D m(16, 16);
  stats::Rng rng(9);
  const auto faults = fault::uniform_random(m, 24, rng);
  MaintainedLabeling live(faults);
  for (const Coord c : faults.to_vector()) {
    live.remove_fault(c);
  }
  EXPECT_TRUE(live.faults().empty());
  EXPECT_TRUE(live.blocks().empty());
  EXPECT_TRUE(live.regions().empty());
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    ASSERT_EQ(live.safety().at_index(i), Safety::Safe);
    ASSERT_EQ(live.activation().at_index(i), Activation::Enabled);
  }
}

}  // namespace
}  // namespace ocp::labeling
