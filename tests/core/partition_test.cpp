// Covers for the paper's open problem: exhaustive optimum vs greedy
// gap-splitting heuristic for multi-polygon fault covers.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "geometry/convexity.hpp"

namespace ocp::labeling {
namespace {

using geom::Region;
using mesh::Coord;

TEST(PartitionTest, EmptyFaultSet) {
  EXPECT_TRUE(closure_cover(Region{}).polygons.empty());
  EXPECT_TRUE(greedy_gap_cover(Region{}).polygons.empty());
  EXPECT_TRUE(optimal_cover_exhaustive(Region{}).polygons.empty());
}

TEST(PartitionTest, SingleFaultIsItsOwnCover) {
  const Region faults({{3, 3}});
  for (const auto& cover :
       {closure_cover(faults), greedy_gap_cover(faults),
        optimal_cover_exhaustive(faults)}) {
    ASSERT_EQ(cover.polygon_count(), 1u);
    EXPECT_EQ(cover.polygons[0], faults);
    EXPECT_EQ(cover.nonfaulty_cells, 0u);
  }
}

TEST(PartitionTest, SinglePolygonCoverIsTheClosure) {
  const Region faults({{0, 0}, {4, 0}, {4, 4}});
  const auto cover = closure_cover(faults);
  ASSERT_EQ(cover.polygon_count(), 1u);
  EXPECT_EQ(cover.polygons[0], geom::rectilinear_convex_closure(faults));
  EXPECT_TRUE(is_valid_cover(faults, cover.polygons));
}

TEST(PartitionTest, ValidityRejectsUncoveredFault) {
  const Region faults({{0, 0}, {5, 5}});
  EXPECT_FALSE(is_valid_cover(faults, {Region({{0, 0}})}));
}

TEST(PartitionTest, ValidityRejectsConcavePolygon) {
  const Region faults({{0, 0}});
  EXPECT_FALSE(
      is_valid_cover(faults, {fault::make_u_shape({0, 0}, 4, 3)}));
}

TEST(PartitionTest, ValidityRejectsAdjacentPolygons) {
  const Region faults({{0, 0}, {1, 1}});
  // Diagonal singletons are 8-adjacent: not a valid two-polygon cover.
  EXPECT_FALSE(
      is_valid_cover(faults, {Region({{0, 0}}), Region({{1, 1}})}));
  // The joint closure is fine.
  EXPECT_TRUE(is_valid_cover(
      faults, {geom::rectilinear_convex_closure(faults)}));
}

TEST(PartitionTest, GreedySplitsAtEmptyLines) {
  // Four corner faults: the single closure bridges everything into the full
  // 5x3 box; greedy splits on the empty column *and* the empty row, ending
  // with four separated singletons.
  const Region faults({{0, 0}, {0, 2}, {4, 0}, {4, 2}});
  const auto single = closure_cover(faults);
  const auto greedy = greedy_gap_cover(faults);
  EXPECT_EQ(single.polygon_count(), 1u);
  EXPECT_EQ(single.nonfaulty_cells, 15u - 4u);
  EXPECT_EQ(greedy.polygon_count(), 4u);
  EXPECT_EQ(greedy.nonfaulty_cells, 0u);
  EXPECT_TRUE(is_valid_cover(faults, greedy.polygons));
}

TEST(PartitionTest, GreedyRecursesIntoSubClusters) {
  // Staircase with empty lines at every level: greedy ends with singletons.
  const Region faults({{0, 0}, {2, 1}, {4, 2}});
  const auto greedy = greedy_gap_cover(faults);
  EXPECT_EQ(greedy.polygon_count(), 3u);
  EXPECT_EQ(greedy.nonfaulty_cells, 0u);
  EXPECT_TRUE(is_valid_cover(faults, greedy.polygons));
}

TEST(PartitionTest, ExhaustiveMatchesKnownOptimum) {
  // Diamond corners: the optimum is four singletons, zero healthy cells.
  const Region faults({{0, 2}, {2, 0}, {4, 2}, {2, 4}});
  const auto optimal = optimal_cover_exhaustive(faults);
  EXPECT_EQ(optimal.nonfaulty_cells, 0u);
  EXPECT_EQ(optimal.polygon_count(), 4u);
  EXPECT_TRUE(is_valid_cover(faults, optimal.polygons));
}

TEST(PartitionTest, DiagonalPairCannotBeSplit) {
  // 8-adjacent faults must share a polygon; all solvers agree.
  const Region faults({{2, 1}, {3, 2}});
  EXPECT_EQ(optimal_cover_exhaustive(faults).polygon_count(), 1u);
  EXPECT_EQ(greedy_gap_cover(faults).polygon_count(), 1u);
  EXPECT_EQ(optimal_cover_exhaustive(faults).nonfaulty_cells, 0u);
}

TEST(PartitionTest, ExhaustiveNeverWorseThanGreedyOrSingle) {
  stats::Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Coord> cells;
    const int f = static_cast<int>(rng.uniform_int(1, 7));
    for (int i = 0; i < f; ++i) {
      cells.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 7)),
                       static_cast<std::int32_t>(rng.uniform_int(0, 7))});
    }
    const Region faults(std::move(cells));
    const auto single = closure_cover(faults);
    const auto greedy = greedy_gap_cover(faults);
    const auto optimal = optimal_cover_exhaustive(faults);

    ASSERT_TRUE(is_valid_cover(faults, single.polygons));
    ASSERT_TRUE(is_valid_cover(faults, greedy.polygons));
    ASSERT_TRUE(is_valid_cover(faults, optimal.polygons));
    ASSERT_LE(optimal.nonfaulty_cells, greedy.nonfaulty_cells);
    ASSERT_LE(greedy.nonfaulty_cells, single.nonfaulty_cells);
  }
}

TEST(PartitionTest, LargeFaultSetFallsBackToGreedy) {
  stats::Rng rng(5);
  std::vector<Coord> cells;
  for (int i = 0; i < 30; ++i) {
    cells.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 20)),
                     static_cast<std::int32_t>(rng.uniform_int(0, 20))});
  }
  const Region faults(std::move(cells));
  const auto cover =
      optimal_cover_exhaustive(faults, CoverRule::Separated,
                               /*max_faults=*/10);
  EXPECT_TRUE(is_valid_cover(faults, cover.polygons));
  EXPECT_EQ(cover.nonfaulty_cells, greedy_gap_cover(faults).nonfaulty_cells);
}

TEST(PartitionTest, TouchingRuleAllowsAdjacentPieces) {
  const Region faults({{0, 0}, {1, 1}});
  const std::vector<Region> split = {Region({{0, 0}}), Region({{1, 1}})};
  EXPECT_FALSE(is_valid_cover(faults, split, CoverRule::Separated));
  EXPECT_TRUE(is_valid_cover(faults, split, CoverRule::Touching));
  // Overlap is rejected even under Touching.
  const std::vector<Region> overlap = {Region({{0, 0}, {1, 0}}),
                                       Region({{1, 0}, {1, 1}})};
  EXPECT_FALSE(is_valid_cover(faults, overlap, CoverRule::Touching));
}

TEST(PartitionTest, TouchingOptimumCutsZigChains) {
  // The paper's remark on Figures 1 (c)/(d): "for certain cases, a disabled
  // region can be further partitioned and more nonfaulty nodes in the
  // region can be removed." A zig-zag fault chain keeps two healthy nodes
  // in its one-polygon cover; cutting it into touching diagonal pairs
  // drops both.
  const Region faults({{3, 3}, {4, 4}, {3, 5}, {4, 6}});
  const auto one = closure_cover(faults);
  ASSERT_EQ(one.polygon_count(), 1u);
  EXPECT_EQ(one.nonfaulty_cells, 2u);

  const auto separated =
      optimal_cover_exhaustive(faults, CoverRule::Separated);
  EXPECT_EQ(separated.nonfaulty_cells, 2u);  // cannot split without touching

  const auto touching = optimal_cover_exhaustive(faults, CoverRule::Touching);
  EXPECT_EQ(touching.nonfaulty_cells, 0u);
  EXPECT_GE(touching.polygon_count(), 2u);
  EXPECT_TRUE(is_valid_cover(faults, touching.polygons, CoverRule::Touching));
}

TEST(PartitionTest, GreedyCutCoverMatchesTouchingOptimumOnZigChain) {
  const Region faults({{3, 3}, {4, 4}, {3, 5}, {4, 6}});
  const auto cut = greedy_cut_cover(faults);
  EXPECT_EQ(cut.nonfaulty_cells, 0u);
  EXPECT_TRUE(is_valid_cover(faults, cut.polygons, CoverRule::Touching));
}

TEST(PartitionTest, CoverHierarchyOnRandomInstances) {
  // optimal(touching) <= greedy(touching) and <= optimal(separated)
  // <= greedy(separated) <= closure, and every cover is valid for its rule.
  stats::Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Coord> cells;
    const int f = static_cast<int>(rng.uniform_int(1, 7));
    for (int i = 0; i < f; ++i) {
      cells.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 7)),
                       static_cast<std::int32_t>(rng.uniform_int(0, 7))});
    }
    const Region faults(std::move(cells));
    const auto closure = closure_cover(faults);
    const auto gap = greedy_gap_cover(faults);
    const auto cut = greedy_cut_cover(faults);
    const auto opt_sep =
        optimal_cover_exhaustive(faults, CoverRule::Separated);
    const auto opt_touch =
        optimal_cover_exhaustive(faults, CoverRule::Touching);

    ASSERT_TRUE(is_valid_cover(faults, gap.polygons, CoverRule::Separated));
    ASSERT_TRUE(is_valid_cover(faults, cut.polygons, CoverRule::Touching));
    ASSERT_TRUE(
        is_valid_cover(faults, opt_sep.polygons, CoverRule::Separated));
    ASSERT_TRUE(
        is_valid_cover(faults, opt_touch.polygons, CoverRule::Touching));

    ASSERT_LE(opt_touch.nonfaulty_cells, opt_sep.nonfaulty_cells);
    ASSERT_LE(opt_touch.nonfaulty_cells, cut.nonfaulty_cells);
    ASSERT_LE(opt_sep.nonfaulty_cells, gap.nonfaulty_cells);
    ASSERT_LE(gap.nonfaulty_cells, closure.nonfaulty_cells);
  }
}

TEST(PartitionTest, PartitioningDisabledRegionsImprovesFigure1cCases) {
  // The paper notes disabled regions like Figures 1 (c)/(d) can be further
  // partitioned. Construct such a case: faults whose disabled region is one
  // polygon but whose fault clusters sit across an empty line.
  const mesh::Mesh2D m(12, 12);
  const grid::CellSet faults{
      m, {{3, 3}, {4, 4}, {3, 5}, {4, 6}}};  // zig chain, one block
  const auto result = run_pipeline(faults);
  ASSERT_EQ(result.regions.size(), 1u);
  const auto& dr = result.regions[0].region();

  // The disabled region covers the faults with some healthy nodes...
  const std::size_t dr_nonfaulty = result.regions[0].disabled_nonfaulty_count;
  // ...and the multi-polygon solvers never do worse.
  Region fault_region(faults.to_vector());
  const auto optimal = optimal_cover_exhaustive(fault_region);
  EXPECT_LE(optimal.nonfaulty_cells, dr_nonfaulty);
  EXPECT_TRUE(is_valid_cover(fault_region, optimal.polygons));
  EXPECT_TRUE(geom::is_orthogonal_convex(dr));
}

}  // namespace
}  // namespace ocp::labeling
