// Pinned reproductions of the paper's worked examples (section 3 and
// Figures 1-2). These tests encode the exact outcomes the text reports.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/fixtures.hpp"
#include "geometry/convexity.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;

// Section 3: "Consider an example of a 2-D mesh with three faulty nodes:
// (1,3), (2,1), and (3,2). Using the safe/unsafe rule, one faulty block
// {(i,j) | i,j in {1,2,3}} is constructed. Using the enabled/disabled rule,
// the faulty block is split into two disabled regions: {(1,3)} and
// {(2,1),(3,2)}. All the nonfaulty nodes in the faulty block are enabled."
TEST(PaperExamples, WorkedExampleFaultyBlock) {
  const auto fx = fault::worked_example();
  const auto result = run_pipeline(fx.faults);

  ASSERT_EQ(result.blocks.size(), 1u);
  const auto& block = result.blocks[0].region();
  EXPECT_EQ(block.size(), 9u);
  for (std::int32_t x = 1; x <= 3; ++x) {
    for (std::int32_t y = 1; y <= 3; ++y) {
      EXPECT_TRUE(block.contains({x, y}));
    }
  }
  EXPECT_TRUE(block.is_rectangle());
}

TEST(PaperExamples, WorkedExampleDisabledRegions) {
  const auto fx = fault::worked_example();
  const auto result = run_pipeline(fx.faults);

  ASSERT_EQ(result.regions.size(), 2u);
  // Row-major extraction order: {(2,1),(3,2)} seeds at (2,1) first.
  const geom::Region expected_a({{2, 1}, {3, 2}});
  const geom::Region expected_b({{1, 3}});
  EXPECT_EQ(result.regions[0].region(), expected_a);
  EXPECT_EQ(result.regions[1].region(), expected_b);

  // "All the nonfaulty nodes in the faulty block are enabled."
  EXPECT_EQ(result.enabled_total(), 6u);
  EXPECT_EQ(result.disabled_nonfaulty_total(), 0u);
}

TEST(PaperExamples, WorkedExampleRegionsAreOrthogonalConvexPolygons) {
  const auto fx = fault::worked_example();
  const auto result = run_pipeline(fx.faults);
  for (const auto& region : result.regions) {
    EXPECT_TRUE(geom::is_orthogonal_convex_polygon(
        region.region(), geom::Connectivity::Eight));
  }
}

// Figure 1: the same fault pattern under Definition 2a forms one faulty
// block; under Definition 2b it forms two blocks, and the total number of
// swallowed nonfaulty nodes shrinks.
TEST(PaperExamples, Figure1DefinitionComparison) {
  const auto fx = fault::figure1();
  PipelineOptions def2a{.definition = SafeUnsafeDef::Def2a};
  PipelineOptions def2b{.definition = SafeUnsafeDef::Def2b};
  const auto a = run_pipeline(fx.faults, def2a);
  const auto b = run_pipeline(fx.faults, def2b);

  ASSERT_EQ(a.blocks.size(), 1u);
  EXPECT_EQ(a.blocks[0].size(), 6u);  // 2x3 bridged block
  EXPECT_TRUE(a.blocks[0].region().is_rectangle());

  ASSERT_EQ(b.blocks.size(), 2u);
  EXPECT_EQ(b.blocks[0].size(), 2u);
  EXPECT_EQ(b.blocks[1].size(), 2u);
  // "the distance between two faulty blocks is at least 2" (Def 2b).
  EXPECT_EQ(b.blocks[0].region().distance_to(b.blocks[1].region()), 2);

  // Definition 2b swallows strictly fewer nonfaulty nodes.
  EXPECT_LT(b.unsafe_nonfaulty_total(), a.unsafe_nonfaulty_total());
}

// Figure 2 (a): the healthy upper-right pocket of the block is activated
// entirely — starting from the corner cell with two outside neighbors.
TEST(PaperExamples, Figure2aPocketFullyEnabled) {
  const auto fx = fault::figure2a();
  const auto result = run_pipeline(fx.faults);

  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 16u);  // the full 4x4 block
  EXPECT_EQ(result.blocks[0].unsafe_nonfaulty_count, 4u);

  for (Coord c : {Coord{4, 4}, Coord{5, 4}, Coord{4, 5}, Coord{5, 5}}) {
    EXPECT_EQ(result.activation[c], Activation::Enabled)
        << mesh::to_string(c);
  }
  EXPECT_EQ(result.enabled_total(), 4u);
}

// Figure 2 (b): the healthy upper-center pocket would have double status
// under a recursive definition; under Definition 3 (monotone, disabled
// start) it stays disabled.
TEST(PaperExamples, Figure2bPocketStaysDisabled) {
  const auto fx = fault::figure2b();
  const auto result = run_pipeline(fx.faults);

  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].size(), 20u);  // the full 5x4 block
  EXPECT_EQ(result.blocks[0].unsafe_nonfaulty_count, 2u);

  EXPECT_EQ((result.activation[{4, 4}]), Activation::Disabled);
  EXPECT_EQ((result.activation[{4, 5}]), Activation::Disabled);
  EXPECT_EQ(result.enabled_total(), 0u);

  // The whole block remains one disabled region and it is still an
  // orthogonal convex polygon (here: the rectangle itself).
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].size(), 20u);
  EXPECT_TRUE(geom::is_orthogonal_convex_polygon(result.regions[0].region()));
}

// Definitions 2a/2b distance claims on the paper's diagonal-pair remark:
// faults (u_x,u_y) and (u_x+1,u_y+1) with no other faults end up in a single
// block under both definitions.
TEST(PaperExamples, DiagonalRemarkSingleRegion) {
  const mesh::Mesh2D m(8, 8);
  const grid::CellSet faults{m, {{3, 3}, {4, 4}}};
  for (auto def : {SafeUnsafeDef::Def2a, SafeUnsafeDef::Def2b}) {
    PipelineOptions opts{.definition = def};
    const auto result = run_pipeline(faults, opts);
    ASSERT_EQ(result.blocks.size(), 1u) << to_string(def);
    EXPECT_EQ(result.blocks[0].size(), 4u) << to_string(def);
  }
}

}  // namespace
}  // namespace ocp::labeling
