// Property-based checks of every claim in section 4 of the paper, swept over
// random fault patterns on meshes and tori, both safe/unsafe definitions and
// a range of fault densities.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "geometry/convexity.hpp"
#include "geometry/boundary.hpp"
#include "geometry/staircase.hpp"

namespace ocp::labeling {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

struct SweepParams {
  std::int32_t nx;
  std::int32_t ny;
  Topology topology;
  SafeUnsafeDef definition;
  std::size_t faults;
  std::size_t trials;
  /// Whether the paper's "max d(B) rounds" claim is asserted for both
  /// phases. It holds in the paper's sparse regime (f about 1% of nodes)
  /// but NOT in general: at high densities phase one merges blocks in a
  /// chain reaction and phase two re-enables along paths that snake around
  /// interior fault clusters, so either phase can take a few more rounds
  /// than the final block diameter (documented deviation; see
  /// EXPERIMENTS.md). A universal progress bound is asserted at every
  /// density.
  bool diameter_round_bound;
};

std::string sweep_name(const testing::TestParamInfo<SweepParams>& info) {
  const auto& p = info.param;
  return std::to_string(p.nx) + "x" + std::to_string(p.ny) +
         (p.topology == Topology::Torus ? "torus" : "mesh") +
         to_string(p.definition) + "f" + std::to_string(p.faults);
}

class TheoremSweep : public testing::TestWithParam<SweepParams> {
 protected:
  /// Runs `fn(faults, result)` over `trials` random instances.
  template <typename Fn>
  void for_each_instance(Fn&& fn) const {
    const auto& p = GetParam();
    const Mesh2D machine(p.nx, p.ny, p.topology);
    for (std::size_t t = 0; t < p.trials; ++t) {
      stats::Rng rng(0xABCD * (t + 1) + p.faults);
      const auto faults = fault::uniform_random(machine, p.faults, rng);
      PipelineOptions opts{.definition = p.definition};
      const auto result = run_pipeline(faults, opts);
      fn(faults, result);
    }
  }

  /// Faults of a component, in its planar frame coordinates.
  static geom::Region frame_faults(const grid::Component& comp,
                                   const grid::CellSet& faults) {
    std::vector<Coord> cells;
    const auto frame_cells = comp.region.cells();
    for (std::size_t i = 0; i < frame_cells.size(); ++i) {
      if (faults.contains(comp.cells()[i])) {
        cells.push_back(frame_cells[i]);
      }
    }
    return geom::Region(std::move(cells));
  }

  /// Minimum machine distance between the cells of two components.
  static std::int32_t machine_distance(const mesh::Mesh2D& m,
                                       const grid::Component& a,
                                       const grid::Component& b) {
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    for (Coord u : a.cells()) {
      for (Coord v : b.cells()) {
        best = std::min(best, m.distance(u, v));
      }
    }
    return best;
  }
};

// Section 3: faulty blocks are disjoint rectangles.
TEST_P(TheoremSweep, FaultyBlocksAreRectangles) {
  for_each_instance([](const auto&, const PipelineResult& result) {
    for (const auto& block : result.blocks) {
      ASSERT_TRUE(block.region().is_rectangle())
          << "non-rectangular block:\n"
          << block.region().to_ascii();
    }
  });
}

// Section 3: inter-block distance is at least 3 under Definition 2a and at
// least 2 under Definition 2b.
TEST_P(TheoremSweep, BlockSeparation) {
  const std::int32_t min_dist =
      GetParam().definition == SafeUnsafeDef::Def2a ? 3 : 2;
  for_each_instance([&](const grid::CellSet& faults,
                        const PipelineResult& result) {
    const auto& m = faults.topology();
    for (std::size_t i = 0; i < result.blocks.size(); ++i) {
      for (std::size_t j = i + 1; j < result.blocks.size(); ++j) {
        ASSERT_GE(machine_distance(m, result.blocks[i].component,
                                   result.blocks[j].component),
                  min_dist);
      }
    }
  });
}

// Theorem 1: every disabled region is an orthogonal convex polygon.
// Checked with both the definitional test and the O(n) staircase-profile
// characterization (which must agree).
TEST_P(TheoremSweep, Theorem1DisabledRegionsAreOrthogonalConvexPolygons) {
  for_each_instance([](const auto&, const PipelineResult& result) {
    for (const auto& region : result.regions) {
      ASSERT_TRUE(geom::is_orthogonal_convex(region.region()))
          << "concave disabled region:\n"
          << region.region().to_ascii();
      ASSERT_TRUE(
          region.region().is_connected(geom::Connectivity::Eight));
      ASSERT_TRUE(geom::is_orthogonal_convex_polygon_fast(region.region()));
    }
  });
}

// Lemma 1: every corner node of a disabled region is faulty.
TEST_P(TheoremSweep, Lemma1CornerNodesAreFaulty) {
  for_each_instance([this](const grid::CellSet& faults,
                           const PipelineResult& result) {
    for (const auto& region : result.regions) {
      const auto frame_cells = region.region().cells();
      for (std::size_t i = 0; i < frame_cells.size(); ++i) {
        if (geom::is_corner_node(region.region(), frame_cells[i])) {
          ASSERT_TRUE(faults.contains(region.component.cells()[i]))
              << "nonfaulty corner node at "
              << mesh::to_string(region.component.cells()[i]) << " in\n"
              << region.region().to_ascii();
        }
      }
    }
  });
}

// Lemma 2: for every node of a disabled region, each of the four quadrants
// anchored at it contains a corner node of the region.
TEST_P(TheoremSweep, Lemma2EveryQuadrantHasACorner) {
  for_each_instance([](const auto&, const PipelineResult& result) {
    for (const auto& region : result.regions) {
      for (Coord u : region.region().cells()) {
        for (geom::Quadrant q : geom::kAllQuadrants) {
          ASSERT_TRUE(geom::quadrant_has_corner(region.region(), u, q))
              << "missing corner in quadrant, origin "
              << mesh::to_string(u) << " in\n"
              << region.region().to_ascii();
        }
      }
    }
  });
}

// Lemma 3: for a node u outside an orthogonal convex region B, at least one
// quadrant anchored at u contains no node of B. Exercised with every
// bounding-box cell just outside each disabled region.
TEST_P(TheoremSweep, Lemma3OutsideNodeHasEmptyQuadrant) {
  for_each_instance([](const auto&, const PipelineResult& result) {
    for (const auto& region : result.regions) {
      const geom::Rect box = region.region().bounding_box();
      for (std::int32_t x = box.lo.x - 1; x <= box.hi.x + 1; ++x) {
        for (std::int32_t y = box.lo.y - 1; y <= box.hi.y + 1; ++y) {
          const Coord u{x, y};
          if (region.region().contains(u)) continue;
          bool some_quadrant_empty = false;
          for (geom::Quadrant q : geom::kAllQuadrants) {
            bool any = false;
            for (Coord c : region.region().cells()) {
              if (geom::in_quadrant(u, q, c)) {
                any = true;
                break;
              }
            }
            if (!any) {
              some_quadrant_empty = true;
              break;
            }
          }
          ASSERT_TRUE(some_quadrant_empty)
              << "node " << mesh::to_string(u)
              << " sees region cells in all quadrants:\n"
              << region.region().to_ascii();
        }
      }
    }
  });
}

// Theorem 2: each disabled region is the smallest orthogonal convex polygon
// covering the faults it contains — i.e. it equals the rectilinear convex
// closure of its fault set.
TEST_P(TheoremSweep, Theorem2RegionsEqualFaultClosure) {
  for_each_instance([this](const grid::CellSet& faults,
                           const PipelineResult& result) {
    for (const auto& region : result.regions) {
      const geom::Region seed = frame_faults(region.component, faults);
      ASSERT_EQ(geom::rectilinear_convex_closure(seed), region.region())
          << "region is not the minimal OCP of its faults:\n"
          << region.region().to_ascii();
    }
  });
}

// Corollary: per faulty block, the nonfaulty nodes covered by its disabled
// regions number no more than those inside the smallest orthogonal convex
// polygon containing all the block's faults.
TEST_P(TheoremSweep, CorollaryBlockwiseOptimality) {
  for_each_instance([this](const grid::CellSet& faults,
                           const PipelineResult& result) {
    std::vector<std::size_t> disabled_nonfaulty(result.blocks.size(), 0);
    for (const auto& region : result.regions) {
      disabled_nonfaulty[region.parent_block] +=
          region.disabled_nonfaulty_count;
    }
    for (std::size_t b = 0; b < result.blocks.size(); ++b) {
      const geom::Region seed =
          frame_faults(result.blocks[b].component, faults);
      const geom::Region closure = geom::rectilinear_convex_closure(seed);
      const std::size_t closure_nonfaulty = closure.size() - seed.size();
      ASSERT_LE(disabled_nonfaulty[b], closure_nonfaulty)
          << "block " << b << " keeps more nonfaulty nodes disabled than "
          << "the minimal single OCP";
    }
  });
}

// Fault rings of disabled regions trace as simple closed walks covering
// every ring cell — the structure boundary-following routers rely on.
TEST_P(TheoremSweep, DisabledRegionRingsTraceCleanly) {
  for_each_instance([](const auto&, const PipelineResult& result) {
    for (const auto& region : result.regions) {
      const geom::Region ring = geom::outer_ring(region.region());
      const auto walk = geom::trace_outer_ring(region.region());
      ASSERT_EQ(walk.size(), ring.size())
          << "ring walk missed cells around:\n"
          << region.region().to_ascii();
      for (mesh::Coord c : walk) {
        ASSERT_TRUE(ring.contains(c));
      }
    }
  });
}

// Disabled regions of one machine are pairwise at distance >= 2 and never
// 8-adjacent.
TEST_P(TheoremSweep, RegionSeparation) {
  for_each_instance([this](const grid::CellSet& faults,
                           const PipelineResult& result) {
    const auto& m = faults.topology();
    for (std::size_t i = 0; i < result.regions.size(); ++i) {
      for (std::size_t j = i + 1; j < result.regions.size(); ++j) {
        ASSERT_GE(machine_distance(m, result.regions[i].component,
                                   result.regions[j].component),
                  2);
      }
    }
  });
}

// Convergence: both phases quiesce within the largest block diameter in the
// paper's sparse regime (see SweepParams::diameter_round_bound); a
// universal progress bound (every executed round changes at least one
// status) holds everywhere.
TEST_P(TheoremSweep, ConvergenceWithinBlockDiameter) {
  const bool strict = GetParam().diameter_round_bound;
  for_each_instance([&](const auto&, const PipelineResult& result) {
    std::int32_t max_diam = 0;
    for (const auto& block : result.blocks) {
      max_diam = std::max(max_diam, block.region().diameter());
    }
    if (strict) {
      ASSERT_LE(result.safety_stats.rounds_to_quiesce, std::max(max_diam, 1));
      ASSERT_LE(result.activation_stats.rounds_to_quiesce,
                std::max(max_diam, 1));
    }
    ASSERT_LE(
        static_cast<std::size_t>(result.safety_stats.rounds_to_quiesce),
        result.unsafe_nonfaulty_total() + 1);
    ASSERT_LE(
        static_cast<std::size_t>(result.activation_stats.rounds_to_quiesce),
        result.enabled_total() + 1);
  });
}

// Faults never change status: every faulty node is unsafe and disabled;
// every disabled node is unsafe (the status lattice of section 3).
TEST_P(TheoremSweep, StatusLatticeInvariants) {
  for_each_instance([](const grid::CellSet& faults,
                       const PipelineResult& result) {
    faults.for_each([&](Coord c) {
      ASSERT_EQ(result.safety[c], Safety::Unsafe);
      ASSERT_EQ(result.activation[c], Activation::Disabled);
    });
    for (std::size_t i = 0; i < result.safety.size(); ++i) {
      if (result.activation.at_index(i) == Activation::Disabled) {
        ASSERT_EQ(result.safety.at_index(i), Safety::Unsafe);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweep,
    testing::Values(
        // Sparse, moderate and dense faults on meshes, both definitions.
        // The strict phase-one round bound is asserted only at the paper's
        // sparse densities.
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2b, 4, 12,
                    true},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2b, 16, 12,
                    false},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2b, 40, 8,
                    false},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2a, 4, 12,
                    true},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2a, 16, 12,
                    false},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2a, 40, 8,
                    false},
        SweepParams{32, 32, Topology::Mesh, SafeUnsafeDef::Def2b, 40, 6,
                    false},
        SweepParams{32, 32, Topology::Mesh, SafeUnsafeDef::Def2a, 40, 6,
                    false},
        // Non-square machines (row-major index math, rectangular bounds).
        SweepParams{7, 29, Topology::Mesh, SafeUnsafeDef::Def2b, 12, 8,
                    false},
        SweepParams{29, 7, Topology::Mesh, SafeUnsafeDef::Def2a, 12, 8,
                    false},
        SweepParams{5, 40, Topology::Mesh, SafeUnsafeDef::Def2b, 10, 8,
                    false},
        // Tori (no ghost boundary, wraparound components).
        SweepParams{16, 16, Topology::Torus, SafeUnsafeDef::Def2b, 12, 10,
                    false},
        SweepParams{16, 16, Topology::Torus, SafeUnsafeDef::Def2a, 12, 10,
                    false},
        SweepParams{24, 24, Topology::Torus, SafeUnsafeDef::Def2b, 30, 6,
                    false},
        SweepParams{9, 21, Topology::Torus, SafeUnsafeDef::Def2b, 9, 8,
                    false}),
    sweep_name);

}  // namespace
}  // namespace ocp::labeling
