// Property-based checks of every claim in section 4 of the paper, swept over
// random fault patterns on meshes and tori, both safe/unsafe definitions and
// a range of fault densities.
//
// Each test asserts exactly one invariant through the ocp_check
// InvariantOracle (src/check/oracle.hpp) — the same machine-checkable
// specification the fuzzer, the metamorphic layer and the mutation smoke
// tests consume — so a failing sweep names the violated claim and carries
// the oracle's structured diagnostics.
#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"

namespace ocp::labeling {
namespace {

using mesh::Mesh2D;
using mesh::Topology;

struct SweepParams {
  std::int32_t nx;
  std::int32_t ny;
  Topology topology;
  SafeUnsafeDef definition;
  std::size_t faults;
  std::size_t trials;
  /// Whether the paper's "max d(B) rounds" claim is asserted for both
  /// phases. It holds in the paper's sparse regime (f about 1% of nodes)
  /// but NOT in general: at high densities phase one merges blocks in a
  /// chain reaction and phase two re-enables along paths that snake around
  /// interior fault clusters, so either phase can take a few more rounds
  /// than the final block diameter (documented deviation; see
  /// EXPERIMENTS.md). A universal progress bound is asserted at every
  /// density.
  bool diameter_round_bound;
};

std::string sweep_name(const testing::TestParamInfo<SweepParams>& info) {
  const auto& p = info.param;
  return std::to_string(p.nx) + "x" + std::to_string(p.ny) +
         (p.topology == Topology::Torus ? "torus" : "mesh") +
         to_string(p.definition) + "f" + std::to_string(p.faults);
}

class TheoremSweep : public testing::TestWithParam<SweepParams> {
 protected:
  /// Runs the oracle restricted to `checks` over `trials` random instances.
  void sweep_check(std::uint32_t checks) const {
    const auto& p = GetParam();
    const Mesh2D machine(p.nx, p.ny, p.topology);
    check::OracleOptions oracle;
    oracle.definition = p.definition;
    oracle.checks = checks;
    oracle.round_bound = p.diameter_round_bound
                             ? check::RoundBound::Strict
                             : check::RoundBound::ProgressOnly;
    for (std::size_t t = 0; t < p.trials; ++t) {
      stats::Rng rng(0xABCD * (t + 1) + p.faults);
      const auto faults = fault::uniform_random(machine, p.faults, rng);
      PipelineOptions opts{.definition = p.definition};
      const auto result = run_pipeline(faults, opts);
      const auto report = check::check_pipeline(faults, result, oracle);
      ASSERT_TRUE(report.ok())
          << "trial " << t << " on " << machine.describe() << ":\n"
          << report.to_string();
    }
  }
};

// Section 3: faulty blocks are disjoint rectangles whose extent is exactly
// the bounding box of their faults.
TEST_P(TheoremSweep, FaultyBlocksAreRectangles) {
  sweep_check(check::kBlockRectangle | check::kBlockFaultContent);
}

// Section 3: inter-block distance is at least 3 under Definition 2a and at
// least 2 under Definition 2b.
TEST_P(TheoremSweep, BlockSeparation) { sweep_check(check::kBlockSeparation); }

// Theorem 1: every disabled region is an orthogonal convex polygon.
// Checked with both the definitional test and the O(n) staircase-profile
// characterization (which must agree).
TEST_P(TheoremSweep, Theorem1DisabledRegionsAreOrthogonalConvexPolygons) {
  sweep_check(check::kTheorem1);
}

// Lemma 1: every corner node of a disabled region is faulty.
TEST_P(TheoremSweep, Lemma1CornerNodesAreFaulty) {
  sweep_check(check::kLemma1);
}

// Lemma 2: for every node of a disabled region, each of the four quadrants
// anchored at it contains a corner node of the region.
TEST_P(TheoremSweep, Lemma2EveryQuadrantHasACorner) {
  sweep_check(check::kLemma2);
}

// Lemma 3: for a node u outside an orthogonal convex region B, at least one
// quadrant anchored at u contains no node of B. Exercised with every
// bounding-box cell just outside each disabled region.
TEST_P(TheoremSweep, Lemma3OutsideNodeHasEmptyQuadrant) {
  sweep_check(check::kLemma3);
}

// Theorem 2: each disabled region is the smallest orthogonal convex polygon
// covering the faults it contains — i.e. it equals the rectilinear convex
// closure of its fault set.
TEST_P(TheoremSweep, Theorem2RegionsEqualFaultClosure) {
  sweep_check(check::kTheorem2);
}

// Corollary: per faulty block, the nonfaulty nodes covered by its disabled
// regions number no more than those inside the smallest orthogonal convex
// polygon containing all the block's faults.
TEST_P(TheoremSweep, CorollaryBlockwiseOptimality) {
  sweep_check(check::kCorollary);
}

// Fault rings of disabled regions trace as simple closed walks covering
// every ring cell — the structure boundary-following routers rely on.
TEST_P(TheoremSweep, DisabledRegionRingsTraceCleanly) {
  sweep_check(check::kRingTrace);
}

// Disabled regions of one machine are pairwise at distance >= 2 and never
// 8-adjacent.
TEST_P(TheoremSweep, RegionSeparation) {
  sweep_check(check::kRegionSeparation);
}

// Convergence: both phases quiesce within the largest block diameter in the
// paper's sparse regime (see SweepParams::diameter_round_bound); a
// universal progress bound (every executed round changes at least one
// status) holds everywhere.
TEST_P(TheoremSweep, ConvergenceWithinBlockDiameter) {
  sweep_check(check::kConvergence);
}

// Faults never change status: every faulty node is unsafe and disabled;
// every disabled node is unsafe (the status lattice of section 3).
TEST_P(TheoremSweep, StatusLatticeInvariants) {
  sweep_check(check::kStatusLattice);
}

// The final labeling is a quiesced, locally justified fixpoint of the
// genuine rules — every status is derivable from the final neighborhood and
// no further transition is pending.
TEST_P(TheoremSweep, LabelingIsJustifiedFixpoint) {
  sweep_check(check::kFixpoint);
}

// The extraction bookkeeping holds: blocks partition the unsafe set, regions
// partition the disabled set, parent links resolve, fault totals match.
TEST_P(TheoremSweep, ExtractionBookkeeping) { sweep_check(check::kExtraction); }

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweep,
    testing::Values(
        // Sparse, moderate and dense faults on meshes, both definitions.
        // The strict phase-one round bound is asserted only at the paper's
        // sparse densities.
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2b, 4, 12,
                    true},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2b, 16, 12,
                    false},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2b, 40, 8,
                    false},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2a, 4, 12,
                    true},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2a, 16, 12,
                    false},
        SweepParams{16, 16, Topology::Mesh, SafeUnsafeDef::Def2a, 40, 8,
                    false},
        SweepParams{32, 32, Topology::Mesh, SafeUnsafeDef::Def2b, 40, 6,
                    false},
        SweepParams{32, 32, Topology::Mesh, SafeUnsafeDef::Def2a, 40, 6,
                    false},
        // Non-square machines (row-major index math, rectangular bounds).
        SweepParams{7, 29, Topology::Mesh, SafeUnsafeDef::Def2b, 12, 8,
                    false},
        SweepParams{29, 7, Topology::Mesh, SafeUnsafeDef::Def2a, 12, 8,
                    false},
        SweepParams{5, 40, Topology::Mesh, SafeUnsafeDef::Def2b, 10, 8,
                    false},
        // Tori (no ghost boundary, wraparound components).
        SweepParams{16, 16, Topology::Torus, SafeUnsafeDef::Def2b, 12, 10,
                    false},
        SweepParams{16, 16, Topology::Torus, SafeUnsafeDef::Def2a, 12, 10,
                    false},
        SweepParams{24, 24, Topology::Torus, SafeUnsafeDef::Def2b, 30, 6,
                    false},
        SweepParams{9, 21, Topology::Torus, SafeUnsafeDef::Def2b, 9, 8,
                    false}),
    sweep_name);

}  // namespace
}  // namespace ocp::labeling
