#include <gtest/gtest.h>

#include <queue>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "routing/adaptive_router.hpp"
#include "routing/minimal_router.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// Independent reference for the oracle: BFS over productive hops only.
bool minimal_bfs(const Mesh2D& m, const grid::CellSet& blocked, Coord src,
                 Coord dst) {
  if (!m.contains(src) || !m.contains(dst) || blocked.contains(src) ||
      blocked.contains(dst)) {
    return false;
  }
  std::queue<Coord> frontier;
  std::unordered_set<Coord> seen;
  frontier.push(src);
  seen.insert(src);
  while (!frontier.empty()) {
    const Coord c = frontier.front();
    frontier.pop();
    if (c == dst) return true;
    const Coord steps[2] = {{c.x + (dst.x > c.x ? 1 : -1), c.y},
                            {c.x, c.y + (dst.y > c.y ? 1 : -1)}};
    for (int i = 0; i < 2; ++i) {
      if (i == 0 && c.x == dst.x) continue;
      if (i == 1 && c.y == dst.y) continue;
      const Coord n = steps[i];
      if (!blocked.contains(n) && m.contains(n) && seen.insert(n).second) {
        frontier.push(n);
      }
    }
  }
  return false;
}

TEST(MinimalOracleTest, FaultFreeAlwaysReachable) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  EXPECT_TRUE(minimal_path_exists(m, blocked, {0, 0}, {7, 7}));
  EXPECT_TRUE(minimal_path_exists(m, blocked, {7, 7}, {0, 0}));
  EXPECT_TRUE(minimal_path_exists(m, blocked, {3, 3}, {3, 3}));
  EXPECT_TRUE(minimal_path_exists(m, blocked, {0, 5}, {7, 5}));
}

TEST(MinimalOracleTest, BlockedEndpointsUnreachable) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked{m, {{2, 2}}};
  EXPECT_FALSE(minimal_path_exists(m, blocked, {2, 2}, {5, 5}));
  EXPECT_FALSE(minimal_path_exists(m, blocked, {0, 0}, {2, 2}));
  EXPECT_FALSE(minimal_path_exists(m, blocked, {-1, 0}, {5, 5}));
}

TEST(MinimalOracleTest, FullWallBlocksMinimalPaths) {
  // A wall spanning the whole minimal rectangle: no monotone path.
  const Mesh2D m(12, 12);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({5, 2}, 1, 8));
  EXPECT_FALSE(minimal_path_exists(m, blocked, {2, 4}, {9, 8}));
  // But a destination above the wall is fine.
  EXPECT_TRUE(minimal_path_exists(m, blocked, {2, 4}, {9, 11}));
}

TEST(MinimalOracleTest, MatchesBfsOnRandomInstances) {
  const Mesh2D m(14, 14);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 25, rng);
    stats::Rng pair_rng(seed + 500);
    for (int i = 0; i < 80; ++i) {
      const auto src = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      ASSERT_EQ(minimal_path_exists(m, faults, src, dst),
                minimal_bfs(m, faults, src, dst))
          << "seed " << seed << " " << mesh::to_string(src) << " -> "
          << mesh::to_string(dst);
    }
  }
}

TEST(MinimalRouterTest, DeliversMinimallyWheneverOracleSaysSo) {
  const Mesh2D m(16, 16);
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 30, rng);
    const auto result = labeling::run_pipeline(faults);
    const auto blocked = labeling::disabled_cells(result.activation);
    const MinimalRouter router(m, blocked, Fallback::None);
    stats::Rng pair_rng(seed + 7);
    for (int i = 0; i < 60; ++i) {
      const auto src = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
        continue;
      }
      const Route r = router.route(src, dst);
      if (minimal_path_exists(m, blocked, src, dst)) {
        ASSERT_TRUE(r.delivered());
        ASSERT_EQ(r.hops(), mesh::manhattan(src, dst));
        for (Coord c : r.path) ASSERT_FALSE(blocked.contains(c));
      } else {
        ASSERT_EQ(r.status, RouteStatus::Blocked);
      }
    }
  }
}

TEST(MinimalRouterTest, RingFallbackDeliversNonMinimalCases) {
  const Mesh2D m(12, 12);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({5, 2}, 1, 8));
  const MinimalRouter strict(m, blocked, Fallback::None);
  const MinimalRouter relaxed(m, blocked, Fallback::Ring);
  const Coord src{2, 4};
  const Coord dst{9, 8};
  EXPECT_EQ(strict.route(src, dst).status, RouteStatus::Blocked);
  const Route r = relaxed.route(src, dst);
  ASSERT_TRUE(r.delivered());
  EXPECT_GT(r.hops(), mesh::manhattan(src, dst));
}

TEST(MinimalRouterTest, BeatsGreedyAdaptiveWhereLookaheadMatters) {
  // A pocket inside the minimal rectangle: the greedy adaptive router can
  // walk in and needs a detour; the oracle-guided router goes around
  // minimally. Pocket: a "C" opening toward the source.
  const Mesh2D m(14, 14);
  grid::CellSet blocked(m);
  // Walls of the pocket: top y=8 (x 4..8), right x=8 (y 4..8), bottom y=4
  // (x 4..8) — open on the left.
  for (std::int32_t x = 4; x <= 8; ++x) {
    blocked.insert({x, 8});
    blocked.insert({x, 4});
  }
  for (std::int32_t y = 4; y <= 8; ++y) blocked.insert({8, y});

  const Coord src{0, 6};
  const Coord dst{12, 10};  // NE of the pocket; minimal paths go over it
  ASSERT_TRUE(minimal_path_exists(m, blocked, src, dst));

  const MinimalRouter minimal(m, blocked, Fallback::None);
  const Route r = minimal.route(src, dst);
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), mesh::manhattan(src, dst));

  const AdaptiveRouter adaptive(m, blocked);
  const Route a = adaptive.route(src, dst);
  ASSERT_TRUE(a.delivered());
  EXPECT_GT(a.hops(), r.hops());  // greedy entered the pocket
}

TEST(MinimalRouterTest, SameRowOrColumnRouting) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked{m, {{5, 3}}};
  const MinimalRouter router(m, blocked, Fallback::None);
  // Same row, fault on it: no minimal path (monotone = straight line).
  EXPECT_EQ(router.route({2, 3}, {8, 3}).status, RouteStatus::Blocked);
  // Same row, no fault.
  const Route r = router.route({2, 4}, {8, 4});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 6);
}

}  // namespace
}  // namespace ocp::routing
