#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "routing/channel_graph.hpp"
#include "routing/traffic.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

/// Adds the routes of every ordered pair of usable nodes to `cdg`.
template <typename RouterT>
void add_all_pairs(ChannelDependencyGraph& cdg, const RouterT& router,
                   const grid::CellSet& blocked) {
  const Mesh2D& m = blocked.topology();
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(m.node_count());
         ++j) {
      if (i == j) continue;
      const Coord src = m.coord(i);
      const Coord dst = m.coord(j);
      if (blocked.contains(src) || blocked.contains(dst)) continue;
      const Route r = router.route(src, dst);
      if (r.delivered()) cdg.add_route(r);
    }
  }
}

TEST(ChannelGraphTest, EmptyGraphIsAcyclic) {
  const Mesh2D m(4, 4);
  const ChannelDependencyGraph cdg(m, 1);
  EXPECT_FALSE(cdg.has_cycle());
  EXPECT_EQ(cdg.active_channels(), 0u);
  EXPECT_EQ(cdg.dependency_count(), 0u);
}

TEST(ChannelGraphTest, SingleRouteIsAcyclic) {
  const Mesh2D m(6, 6);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  ChannelDependencyGraph cdg(m, 1);
  cdg.add_route(router.route({0, 0}, {5, 5}));
  EXPECT_FALSE(cdg.has_cycle());
  EXPECT_GT(cdg.dependency_count(), 0u);
}

// The classic result: dimension-order routing on a fault-free mesh is
// deadlock-free with a single virtual channel.
TEST(ChannelGraphTest, XYAllPairsIsAcyclicWithOneVC) {
  const Mesh2D m(6, 6);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  ChannelDependencyGraph cdg(m, 1);
  add_all_pairs(cdg, router, blocked);
  EXPECT_FALSE(cdg.has_cycle());
}

// Ring detours on one virtual channel close dependency cycles around the
// obstacle...
TEST(ChannelGraphTest, RingDetoursOnOneVCCycle) {
  const Mesh2D m(8, 8);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({3, 3}, 2, 2));
  const FaultRingRouter router(m, blocked);
  ChannelDependencyGraph cdg(m, 1);
  add_all_pairs(cdg, router, blocked);
  EXPECT_TRUE(cdg.has_cycle());
}

// ...while moving detour hops onto a dedicated virtual channel keeps the
// dimension-order (VC 0) subgraph acyclic — the separation that lets the
// fault-tolerant schemes of the literature stay deadlock-free with few
// virtual channels once fault regions are convex (the detour channels are
// then handled by an orientation argument on the rings).
TEST(ChannelGraphTest, EcubeChannelsStayAcyclicWithDetourVC) {
  const Mesh2D m(8, 8);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({3, 3}, 2, 2));
  const FaultRingRouter router(m, blocked);
  ChannelDependencyGraph pure(m, 2);
  const Mesh2D& machine = m;
  for (std::size_t i = 0; i < static_cast<std::size_t>(machine.node_count());
       ++i) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(machine.node_count());
         ++j) {
      if (i == j) continue;
      const Coord src = machine.coord(i);
      const Coord dst = machine.coord(j);
      if (blocked.contains(src) || blocked.contains(dst)) continue;
      Route r = router.route(src, dst);
      if (!r.delivered()) continue;
      // Keep only the dimension-order fragments: a packet re-acquires its
      // escort channel after each detour, so holding-while-requesting
      // dependencies between VC-0 hops exist only within one fragment.
      Route fragment;
      fragment.status = RouteStatus::Delivered;
      for (std::size_t h = 0; h + 1 < r.path.size(); ++h) {
        if (r.phase[h] != 0) {
          if (!fragment.path.empty()) {
            pure.add_route(fragment);
            fragment.path.clear();
            fragment.phase.clear();
          }
          continue;
        }
        if (fragment.path.empty()) fragment.path.push_back(r.path[h]);
        fragment.path.push_back(r.path[h + 1]);
        fragment.phase.push_back(0);
      }
      if (!fragment.path.empty()) pure.add_route(fragment);
    }
  }
  EXPECT_FALSE(pure.has_cycle());
}

TEST(ChannelGraphTest, DependenciesAreDeduplicated) {
  const Mesh2D m(5, 5);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  ChannelDependencyGraph cdg(m, 1);
  const Route r = router.route({0, 0}, {4, 0});
  cdg.add_route(r);
  const std::size_t once = cdg.dependency_count();
  cdg.add_route(r);
  EXPECT_EQ(cdg.dependency_count(), once);
}

TEST(ChannelGraphTest, RejectsZeroVirtualChannels) {
  const Mesh2D m(4, 4);
  EXPECT_THROW(ChannelDependencyGraph(m, 0), std::invalid_argument);
}

TEST(ChannelGraphTest, LabeledInstanceVC0SubgraphAcyclic) {
  // Full pipeline instance: XY fragments of ring routes around disabled
  // regions use VC 0 only and must stay acyclic.
  const Mesh2D m(12, 12);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 10, rng);
  const auto result = labeling::run_pipeline(faults);
  const auto blocked = labeling::disabled_cells(result.activation);
  const XYRouter xy(m, blocked);
  ChannelDependencyGraph cdg(m, 1);
  add_all_pairs(cdg, xy, blocked);
  EXPECT_FALSE(cdg.has_cycle());
}

}  // namespace
}  // namespace ocp::routing
