#include "routing/multicast.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

std::vector<Coord> sample_dests(const Mesh2D& m, const grid::CellSet& blocked,
                                std::size_t count, stats::Rng& rng) {
  std::vector<Coord> dests;
  while (dests.size() < count) {
    const Coord c = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    if (blocked.contains(c)) continue;
    if (std::find(dests.begin(), dests.end(), c) != dests.end()) continue;
    dests.push_back(c);
  }
  return dests;
}

TEST(MulticastTest, EmptyDestinationSet) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const FaultRingRouter router(m, blocked);
  EXPECT_TRUE(separate_unicast(router, {0, 0}, {}).complete());
  EXPECT_TRUE(path_multicast(router, {0, 0}, {}).complete());
  EXPECT_TRUE(tree_multicast(router, m, {0, 0}, {}).complete());
}

TEST(MulticastTest, AllSchemesReachEveryDestinationFaultFree) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const FaultRingRouter router(m, blocked);
  stats::Rng rng(1);
  const auto dests = sample_dests(m, blocked, 8, rng);
  for (const Multicast& result :
       {separate_unicast(router, {5, 5}, dests),
        path_multicast(router, {5, 5}, dests),
        tree_multicast(router, m, {5, 5}, dests)}) {
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.requested, 8u);
    EXPECT_GT(result.traffic, 0);
    EXPECT_GT(result.depth, 0);
  }
}

TEST(MulticastTest, AllSchemesCompleteOverLabeledRegions) {
  const Mesh2D m(20, 20);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 24, rng);
    labeling::PipelineOptions label_opts;
    label_opts.engine = labeling::Engine::Reference;
    const auto labeled = labeling::run_pipeline(faults, label_opts);
    const auto blocked = labeling::disabled_cells(labeled.activation);
    if (blocked.contains({10, 10})) continue;
    const FaultRingRouter router(m, blocked);
    const auto dests = sample_dests(m, blocked, 10, rng);
    EXPECT_TRUE(separate_unicast(router, {10, 10}, dests).complete());
    EXPECT_TRUE(path_multicast(router, {10, 10}, dests).complete());
    EXPECT_TRUE(tree_multicast(router, m, {10, 10}, dests).complete());
  }
}

TEST(MulticastTest, TreeTrafficNeverExceedsSeparateUnicast) {
  // Prim attaches each destination at distance <= its distance from the
  // source, so with a well-behaved router tree traffic is bounded by the
  // unicast total.
  const Mesh2D m(16, 16);
  const grid::CellSet blocked(m);
  const FaultRingRouter router(m, blocked);
  stats::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto dests = sample_dests(m, blocked, 12, rng);
    const auto unicast = separate_unicast(router, {8, 8}, dests);
    const auto tree = tree_multicast(router, m, {8, 8}, dests);
    ASSERT_TRUE(unicast.complete());
    ASSERT_TRUE(tree.complete());
    EXPECT_LE(tree.traffic, unicast.traffic);
  }
}

TEST(MulticastTest, PathMulticastUsesAtMostTwoChains) {
  // Traffic of the dual-path scheme is the two chain lengths; its depth can
  // exceed a single unicast but each destination is visited exactly once.
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const FaultRingRouter router(m, blocked);
  const std::vector<Coord> dests = {{1, 1}, {1, 10}, {10, 1}, {10, 10}};
  const auto result = path_multicast(router, {6, 6}, dests);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.legs.size(), 4u);
  // Every leg starts where the previous leg of its chain ended.
  // (Checked indirectly: total reached equals requested and traffic is the
  // sum of leg hops.)
  std::int64_t hops = 0;
  for (const auto& leg : result.legs) hops += leg.hops();
  EXPECT_EQ(result.traffic, hops);
}

TEST(MulticastTest, DepthIsAtLeastFarthestDestination) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const FaultRingRouter router(m, blocked);
  const std::vector<Coord> dests = {{11, 11}, {0, 11}};
  for (const Multicast& result :
       {separate_unicast(router, {0, 0}, dests),
        path_multicast(router, {0, 0}, dests),
        tree_multicast(router, m, {0, 0}, dests)}) {
    EXPECT_GE(result.depth, 22);  // manhattan((0,0),(11,11))
  }
}

TEST(MulticastTest, TorusWrapShortensEverySchemeAcrossTheSeam) {
  const Mesh2D torus(12, 12, mesh::Topology::Torus);
  const grid::CellSet blocked(torus);
  const XYRouter router(torus, blocked);
  // All three destinations sit just across a wrap seam from the origin.
  const std::vector<Coord> dests = {{11, 11}, {0, 11}, {11, 0}};

  const auto unicast = separate_unicast(router, {0, 0}, dests);
  ASSERT_TRUE(unicast.complete());
  // Wrap distances: (11,11) -> 2, (0,11) -> 1, (11,0) -> 1. The planar
  // depth would be 22.
  EXPECT_EQ(unicast.depth, 2);
  EXPECT_EQ(unicast.traffic, 4);

  const auto path = path_multicast(router, {0, 0}, dests);
  ASSERT_TRUE(path.complete());
  EXPECT_EQ(path.reached, 3u);

  const auto tree = tree_multicast(router, torus, {0, 0}, dests);
  ASSERT_TRUE(tree.complete());
  // Prim works on torus distances, so the tree also crosses the seams.
  EXPECT_LE(tree.traffic, unicast.traffic);
  EXPECT_LE(tree.depth, 4);
}

TEST(MulticastTest, DegenerateSingleColumnMesh) {
  // 1xN line: every scheme degenerates to chains along the one dimension.
  const Mesh2D m(1, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const std::vector<Coord> dests = {{0, 7}, {0, 3}, {0, 1}};

  const auto unicast = separate_unicast(router, {0, 0}, dests);
  ASSERT_TRUE(unicast.complete());
  EXPECT_EQ(unicast.traffic, 11);  // 7 + 3 + 1
  EXPECT_EQ(unicast.depth, 7);

  const auto path = path_multicast(router, {0, 0}, dests);
  ASSERT_TRUE(path.complete());

  const auto tree = tree_multicast(router, m, {0, 0}, dests);
  ASSERT_TRUE(tree.complete());
  // On a line the tree is one chain through the destinations in order.
  EXPECT_EQ(tree.traffic, 7);
  EXPECT_EQ(tree.depth, 7);
}

TEST(MulticastTest, DegenerateSingleColumnTorusUsesTheWrapLink) {
  const Mesh2D ring(1, 6, mesh::Topology::Torus);
  const grid::CellSet blocked(ring);
  const XYRouter router(ring, blocked);
  const std::vector<Coord> dests = {{0, 5}};  // 1 hop across the seam
  const auto unicast = separate_unicast(router, {0, 0}, dests);
  ASSERT_TRUE(unicast.complete());
  EXPECT_EQ(unicast.depth, 1);
  const auto tree = tree_multicast(router, ring, {0, 0}, dests);
  ASSERT_TRUE(tree.complete());
  EXPECT_EQ(tree.traffic, 1);
}

TEST(MulticastTest, UnreachableDestinationIsReportedNotLost) {
  const Mesh2D m(10, 10);
  // Box in a destination completely.
  grid::CellSet blocked(m);
  const geom::Region ring = fault::make_rectangle({4, 4}, 3, 3);
  for (Coord c : ring.cells()) {
    if (c != Coord{5, 5}) blocked.insert(c);
  }
  const FaultRingRouter router(m, blocked);
  const std::vector<Coord> dests = {{5, 5}, {9, 9}};
  const auto result = separate_unicast(router, {0, 0}, dests);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.reached, 1u);
  EXPECT_EQ(result.requested, 2u);
}

}  // namespace
}  // namespace ocp::routing
