// Wraparound routing: e-cube takes the shorter way around each ring and the
// boundary-following detours may cross the seams.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "routing/router.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

TEST(TorusRoutingTest, EcubeDirectionUsesShorterArc) {
  const Mesh2D m(10, 10, Topology::Torus);
  EXPECT_EQ(ecube_direction(m, {1, 0}, {9, 0}), mesh::Dir::West);  // 2 vs 8
  EXPECT_EQ(ecube_direction(m, {9, 0}, {1, 0}), mesh::Dir::East);
  EXPECT_EQ(ecube_direction(m, {0, 1}, {0, 9}), mesh::Dir::South);
  EXPECT_EQ(ecube_direction(m, {0, 0}, {0, 4}), mesh::Dir::North);
  EXPECT_EQ(ecube_direction(m, {3, 3}, {3, 3}), std::nullopt);
  // Exact half: positive direction wins the tie.
  EXPECT_EQ(ecube_direction(m, {0, 0}, {5, 0}), mesh::Dir::East);
}

TEST(TorusRoutingTest, MeshVariantIsPlanar) {
  const Mesh2D m(10, 10);
  EXPECT_EQ(ecube_direction(m, {1, 0}, {9, 0}), mesh::Dir::East);
  EXPECT_EQ(ecube_direction(m, {1, 0}, {9, 0}),
            ecube_direction({1, 0}, {9, 0}));
}

TEST(TorusRoutingTest, XYRouteWrapsAndIsMinimal) {
  const Mesh2D m(12, 12, Topology::Torus);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const Route r = router.route({1, 1}, {11, 11});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), m.distance({1, 1}, {11, 11}));
  EXPECT_EQ(r.hops(), 4);  // 2 wrap hops per dimension
}

TEST(TorusRoutingTest, XYRouteOnMeshUnchanged) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const Route r = router.route({1, 1}, {11, 11});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 20);
}

TEST(TorusRoutingTest, RingRouterDetoursAcrossSeam) {
  const Mesh2D m(12, 12, Topology::Torus);
  // A blocked column segment sitting on the seam path.
  grid::CellSet blocked(m);
  for (std::int32_t y = 3; y <= 9; ++y) blocked.insert({0, y});
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({10, 6}, {2, 6});  // shortest way wraps x
  ASSERT_TRUE(r.delivered());
  for (Coord c : r.path) EXPECT_FALSE(blocked.contains(c));
  EXPECT_GT(r.hops(), 0);
}

TEST(TorusRoutingTest, AllPairsDeliveredOverLabeledTorus) {
  const Mesh2D m(14, 14, Topology::Torus);
  stats::Rng rng(3);
  const auto faults = fault::uniform_random(m, 14, rng);
  const auto result = labeling::run_pipeline(faults);
  const auto blocked = labeling::disabled_cells(result.activation);
  const FaultRingRouter router(m, blocked);
  stats::Rng pair_rng(4);
  for (int i = 0; i < 150; ++i) {
    const auto src = m.coord(static_cast<std::size_t>(
        pair_rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        pair_rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
      continue;
    }
    const Route r = router.route(src, dst);
    ASSERT_TRUE(r.delivered())
        << mesh::to_string(src) << " -> " << mesh::to_string(dst);
    // Hop validity across the seams.
    for (std::size_t h = 0; h + 1 < r.path.size(); ++h) {
      ASSERT_TRUE(m.linked(r.path[h], r.path[h + 1]));
    }
  }
}

TEST(TorusRoutingTest, FaultFreeTorusRoutesAreMinimal) {
  const Mesh2D m(9, 9, Topology::Torus);
  const grid::CellSet blocked(m);
  const FaultRingRouter router(m, blocked);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
       i += 5) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(m.node_count());
         j += 7) {
      const Coord src = m.coord(i);
      const Coord dst = m.coord(j);
      const Route r = router.route(src, dst);
      ASSERT_TRUE(r.delivered());
      ASSERT_EQ(r.hops(), m.distance(src, dst));
    }
  }
}

}  // namespace
}  // namespace ocp::routing
