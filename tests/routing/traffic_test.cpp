#include <gtest/gtest.h>

#include "fault/shapes.hpp"
#include "routing/traffic.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(TrafficTest, FaultFreeUniformTrafficAllDelivered) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  stats::Rng rng(1);
  const auto t = run_uniform_traffic(router, blocked, 500, rng);
  EXPECT_EQ(t.attempts, 500u);
  EXPECT_EQ(t.delivered, 500u);
  EXPECT_DOUBLE_EQ(t.delivery_rate(), 1.0);
  // XY on a fault-free mesh is minimal: stretch identically zero.
  EXPECT_DOUBLE_EQ(t.stretch.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.stretch.max(), 0.0);
}

TEST(TrafficTest, SampledEndpointsAreNeverBlocked) {
  const Mesh2D m(10, 10);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({3, 3}, 3, 3));
  const FaultRingRouter router(m, blocked);
  stats::Rng rng(2);
  const auto t = run_uniform_traffic(router, blocked, 300, rng);
  // Invalid routes only arise from blocked endpoints; the sampler avoids
  // them, so everything is either delivered or an honest routing failure.
  EXPECT_EQ(t.delivered + t.blocked + t.livelocked, t.attempts);
}

TEST(TrafficTest, RingRouterBeatsXYOnDelivery) {
  const Mesh2D m(12, 12);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({4, 4}, 3, 3));
  const XYRouter xy(m, blocked);
  const FaultRingRouter ring(m, blocked);
  stats::Rng rng_a(3);
  stats::Rng rng_b(3);
  const auto t_xy = run_uniform_traffic(xy, blocked, 400, rng_a);
  const auto t_ring = run_uniform_traffic(ring, blocked, 400, rng_b);
  EXPECT_LT(t_xy.delivery_rate(), 1.0);
  EXPECT_DOUBLE_EQ(t_ring.delivery_rate(), 1.0);
}

TEST(TrafficTest, AllPairsCountsOrderedPairs) {
  const Mesh2D m(4, 4);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const auto t = run_all_pairs(router, blocked);
  EXPECT_EQ(t.attempts, 16u * 15u);
  EXPECT_EQ(t.delivered, 16u * 15u);
}

TEST(TrafficTest, AllPairsSkipsBlockedNodes) {
  const Mesh2D m(4, 4);
  const grid::CellSet blocked{m, {{1, 1}, {2, 2}}};
  const FaultRingRouter router(m, blocked);
  const auto t = run_all_pairs(router, blocked);
  EXPECT_EQ(t.attempts, 14u * 13u);
}

TEST(TrafficTest, EmptyUsableSetIsSafe) {
  const Mesh2D m(2, 2);
  grid::CellSet blocked(m);
  for (std::size_t i = 0; i < 4; ++i) blocked.insert(m.coord(i));
  const XYRouter router(m, blocked);
  stats::Rng rng(4);
  const auto t = run_uniform_traffic(router, blocked, 10, rng);
  EXPECT_EQ(t.attempts, 0u);
  EXPECT_DOUBLE_EQ(t.delivery_rate(), 1.0);  // vacuous
}

TEST(TrafficTest, DetourHopsReportedForRingRoutes) {
  const Mesh2D m(12, 12);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({4, 4}, 4, 4));
  const FaultRingRouter router(m, blocked);
  const auto t = run_all_pairs(router, blocked);
  EXPECT_DOUBLE_EQ(t.delivery_rate(), 1.0);
  EXPECT_GT(t.detour_hops.max(), 0.0);
  EXPECT_GE(t.stretch.mean(), 0.0);
}

}  // namespace
}  // namespace ocp::routing
