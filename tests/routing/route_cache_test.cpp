#include "routing/route_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(RouteCacheTest, CachedRouteEqualsDirectRoute) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked{m, {{5, 5}, {6, 5}}};
  const FaultRingRouter router(m, blocked);
  RouteCache cache(router, m);

  const Route& cached = cache.lookup({1, 2}, {9, 8});
  const Route direct = router.route({1, 2}, {9, 8});
  EXPECT_EQ(cached.status, direct.status);
  EXPECT_EQ(cached.path, direct.path);
  // Second lookup returns the same stored object.
  EXPECT_EQ(&cache.lookup({1, 2}, {9, 8}), &cached);
}

TEST(RouteCacheTest, HitMissCountersAreExactSingleThreaded) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  (void)cache.lookup({0, 0}, {7, 7});
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  (void)cache.lookup({0, 0}, {7, 7});
  (void)cache.lookup({0, 0}, {7, 7});
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  (void)cache.lookup({7, 7}, {0, 0});  // direction matters: a new pair
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

// 8 threads hammering ONE key: every lookup must be accounted as exactly one
// hit or one miss (the counters are atomic), the table ends up with a single
// entry, and at least one thread took the miss path. Run under
// OCP_SANITIZE=thread (ctest -L tsan) this also races the shared_mutex fast
// path against the insert path.
TEST(RouteCacheTest, ConcurrentSameKeyLookupsAccountEveryLookup) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  constexpr int kThreads = 8;
  constexpr int kLookups = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kLookups; ++i) {
        const Route& r = cache.lookup({1, 1}, {14, 13});
        ASSERT_TRUE(r.delivered());
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.size(), 1u);
  // Concurrent first lookups may each count a miss (both ran the router;
  // the insert is try_emplace so the table still has one entry), but no
  // lookup may vanish and no lookup may count twice.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kLookups);
  EXPECT_GE(cache.misses(), 1u);
  EXPECT_LE(cache.misses(), static_cast<std::uint64_t>(kThreads));
}

// 8 threads over DISTINCT key sets (each thread owns its own sources): the
// table must hold every pair exactly once and the counter identity
// hits + misses == lookups must survive concurrent inserts of different
// keys resizing the map under the unique lock.
TEST(RouteCacheTest, ConcurrentDistinctKeyLookupsAccountEveryLookup) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  constexpr int kThreads = 8;
  constexpr int kDests = 24;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const Coord src{t, 2 * t};  // per-thread source: disjoint key sets
      for (int round = 0; round < kRounds; ++round) {
        for (int d = 0; d < kDests; ++d) {
          const Coord dst{15 - d % 4, d / 4 + 8};
          if (dst == src) continue;
          (void)cache.lookup(src, dst);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t expected_lookups = 0;
  std::uint64_t expected_pairs = 0;
  for (int t = 0; t < kThreads; ++t) {
    const Coord src{t, 2 * t};
    for (int d = 0; d < kDests; ++d) {
      const Coord dst{15 - d % 4, d / 4 + 8};
      if (dst == src) continue;
      ++expected_pairs;
      expected_lookups += kRounds;
    }
  }
  EXPECT_EQ(cache.size(), expected_pairs);
  EXPECT_EQ(cache.hits() + cache.misses(), expected_lookups);
  // Each distinct pair missed at least once; keys are disjoint across
  // threads, so there is no cross-thread double-miss and the count is exact.
  EXPECT_EQ(cache.misses(), expected_pairs);
  EXPECT_EQ(cache.hits(), expected_lookups - expected_pairs);
}

TEST(RouteCacheTest, ClearRetiresEntriesAndAdvancesGeneration) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  EXPECT_EQ(cache.generation(), 0u);
  (void)cache.lookup({0, 0}, {7, 7});
  (void)cache.lookup({1, 1}, {6, 6});
  ASSERT_EQ(cache.size(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.generation(), 1u);
  // Hit/miss counters are cumulative across generations.
  EXPECT_EQ(cache.misses(), 2u);

  // The next lookup repopulates: a fresh miss, not a stale hit.
  (void)cache.lookup({0, 0}, {7, 7});
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.generation(), 2u);
}

TEST(RouteCacheTest, SharedHandleSurvivesClear) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  const std::shared_ptr<const Route> held = cache.lookup_shared({0, 0}, {7, 7});
  ASSERT_NE(held, nullptr);
  const auto path_before = held->path;
  cache.clear();
  // The handle keeps the retired route alive and intact.
  EXPECT_TRUE(held->delivered());
  EXPECT_EQ(held->path, path_before);
}

// 8 threads: 6 readers via lookup_shared, 2 clearers invalidating the table
// underneath them. Every handle must come back non-null with a delivered
// route regardless of interleaving — the tsan build (ctest -L tsan) checks
// the handoff between the swap-under-lock in clear() and the shared-lock
// fast path for data races.
TEST(RouteCacheTest, ConcurrentClearAndSharedLookupsStaySafe) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked{m, {{7, 7}, {8, 7}}};
  const FaultRingRouter router(m, blocked);
  RouteCache cache(router, m);

  constexpr int kReaders = 6;
  constexpr int kClearers = 2;
  constexpr int kLookups = 500;
  constexpr int kClears = 200;
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kClearers);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kLookups; ++i) {
        const Coord src{t, (t + i) % 16};
        const Coord dst{15 - i % 3, (i / 3) % 16};
        if (src == dst) continue;
        const auto route = cache.lookup_shared(src, dst);
        ASSERT_NE(route, nullptr);
        ASSERT_TRUE(route->delivered());
        ASSERT_FALSE(route->path.empty());
      }
    });
  }
  for (int t = 0; t < kClearers; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kClears; ++i) {
        cache.clear();
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.generation(),
            static_cast<std::uint64_t>(kClearers) * kClears);
  // Counter identity holds across invalidations (skipped src==dst pairs
  // are not lookups).
  EXPECT_GE(cache.hits() + cache.misses(), 1u);
}

}  // namespace
}  // namespace ocp::routing
