#include "routing/route_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(RouteCacheTest, CachedRouteEqualsDirectRoute) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked{m, {{5, 5}, {6, 5}}};
  const FaultRingRouter router(m, blocked);
  RouteCache cache(router, m);

  const Route& cached = cache.lookup({1, 2}, {9, 8});
  const Route direct = router.route({1, 2}, {9, 8});
  EXPECT_EQ(cached.status, direct.status);
  EXPECT_EQ(cached.path, direct.path);
  // Second lookup returns the same stored object.
  EXPECT_EQ(&cache.lookup({1, 2}, {9, 8}), &cached);
}

TEST(RouteCacheTest, HitMissCountersAreExactSingleThreaded) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  (void)cache.lookup({0, 0}, {7, 7});
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  (void)cache.lookup({0, 0}, {7, 7});
  (void)cache.lookup({0, 0}, {7, 7});
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  (void)cache.lookup({7, 7}, {0, 0});  // direction matters: a new pair
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

// 8 threads hammering ONE key: every lookup must be accounted as exactly one
// hit or one miss (the counters are atomic), the table ends up with a single
// entry, and at least one thread took the miss path. Run under
// OCP_SANITIZE=thread (ctest -L tsan) this also races the shared_mutex fast
// path against the insert path.
TEST(RouteCacheTest, ConcurrentSameKeyLookupsAccountEveryLookup) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  constexpr int kThreads = 8;
  constexpr int kLookups = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kLookups; ++i) {
        const Route& r = cache.lookup({1, 1}, {14, 13});
        ASSERT_TRUE(r.delivered());
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.size(), 1u);
  // Concurrent first lookups may each count a miss (both ran the router;
  // the insert is try_emplace so the table still has one entry), but no
  // lookup may vanish and no lookup may count twice.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kLookups);
  EXPECT_GE(cache.misses(), 1u);
  EXPECT_LE(cache.misses(), static_cast<std::uint64_t>(kThreads));
}

// 8 threads over DISTINCT key sets (each thread owns its own sources): the
// table must hold every pair exactly once and the counter identity
// hits + misses == lookups must survive concurrent inserts of different
// keys resizing the map under the unique lock.
TEST(RouteCacheTest, ConcurrentDistinctKeyLookupsAccountEveryLookup) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  constexpr int kThreads = 8;
  constexpr int kDests = 24;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const Coord src{t, 2 * t};  // per-thread source: disjoint key sets
      for (int round = 0; round < kRounds; ++round) {
        for (int d = 0; d < kDests; ++d) {
          const Coord dst{15 - d % 4, d / 4 + 8};
          if (dst == src) continue;
          (void)cache.lookup(src, dst);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t expected_lookups = 0;
  std::uint64_t expected_pairs = 0;
  for (int t = 0; t < kThreads; ++t) {
    const Coord src{t, 2 * t};
    for (int d = 0; d < kDests; ++d) {
      const Coord dst{15 - d % 4, d / 4 + 8};
      if (dst == src) continue;
      ++expected_pairs;
      expected_lookups += kRounds;
    }
  }
  EXPECT_EQ(cache.size(), expected_pairs);
  EXPECT_EQ(cache.hits() + cache.misses(), expected_lookups);
  // Each distinct pair missed at least once; keys are disjoint across
  // threads, so there is no cross-thread double-miss and the count is exact.
  EXPECT_EQ(cache.misses(), expected_pairs);
  EXPECT_EQ(cache.hits(), expected_lookups - expected_pairs);
}

TEST(RouteCacheTest, ClearRetiresEntriesAndAdvancesGeneration) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  EXPECT_EQ(cache.generation(), 0u);
  (void)cache.lookup({0, 0}, {7, 7});
  (void)cache.lookup({1, 1}, {6, 6});
  ASSERT_EQ(cache.size(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.generation(), 1u);
  // Hit/miss counters are cumulative across generations.
  EXPECT_EQ(cache.misses(), 2u);

  // The next lookup repopulates: a fresh miss, not a stale hit.
  (void)cache.lookup({0, 0}, {7, 7});
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.generation(), 2u);
}

TEST(RouteCacheTest, SharedHandleSurvivesClear) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  RouteCache cache(router, m);

  const std::shared_ptr<const Route> held = cache.lookup_shared({0, 0}, {7, 7});
  ASSERT_NE(held, nullptr);
  const auto path_before = held->path;
  cache.clear();
  // The handle keeps the retired route alive and intact.
  EXPECT_TRUE(held->delivered());
  EXPECT_EQ(held->path, path_before);
}

// 8 threads: 6 readers via lookup_shared, 2 clearers invalidating the table
// underneath them. Every handle must come back non-null with a delivered
// route regardless of interleaving — the tsan build (ctest -L tsan) checks
// the handoff between the swap-under-lock in clear() and the shared-lock
// fast path for data races.
TEST(RouteCacheTest, ConcurrentClearAndSharedLookupsStaySafe) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked{m, {{7, 7}, {8, 7}}};
  const FaultRingRouter router(m, blocked);
  RouteCache cache(router, m);

  constexpr int kReaders = 6;
  constexpr int kClearers = 2;
  constexpr int kLookups = 500;
  constexpr int kClears = 200;
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kClearers);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kLookups; ++i) {
        const Coord src{t, (t + i) % 16};
        const Coord dst{15 - i % 3, (i / 3) % 16};
        if (src == dst) continue;
        const auto route = cache.lookup_shared(src, dst);
        ASSERT_NE(route, nullptr);
        ASSERT_TRUE(route->delivered());
        ASSERT_FALSE(route->path.empty());
      }
    });
  }
  for (int t = 0; t < kClearers; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kClears; ++i) {
        cache.clear();
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.generation(),
            static_cast<std::uint64_t>(kClearers) * kClears);
  // Counter identity holds across invalidations (skipped src==dst pairs
  // are not lookups).
  EXPECT_GE(cache.hits() + cache.misses(), 1u);
}

// Carry-over across an epoch boundary: entries whose footprint avoids the
// dirty tiles move to the successor cache and serve as hits; entries that
// touched the dirty tiles are dropped and recompute against the new router.
TEST(RouteCacheTest, AdoptCarriesCleanEntriesAndDropsDirtyOnes) {
  const Mesh2D m(32, 32);
  const grid::CellSet old_blocked{m, {{16, 16}, {17, 16}}};
  const FaultRingRouter old_router(m, old_blocked);
  RouteCache old_cache(old_router, m);

  const Coord far_src{1, 1}, far_dst{6, 2};       // top-left corner traffic
  const Coord near_src{12, 16}, near_dst{22, 16};  // crosses the fault
  (void)old_cache.lookup(far_src, far_dst);
  const Route near_before = old_cache.lookup(near_src, near_dst);
  ASSERT_EQ(old_cache.size(), 2u);

  // New epoch: a fault lands in the middle of the near route's old path, so
  // that route must change. Dirty tiles = the changed cell's padded
  // footprint, exactly what the ingest layer hands over.
  const Coord extra = near_before.path[near_before.path.size() / 2];
  ASSERT_NE(extra, near_src);
  ASSERT_NE(extra, near_dst);
  grid::CellSet new_blocked = old_blocked;
  new_blocked.insert(extra);
  const FaultRingRouter new_router(m, new_blocked);
  RouteCache new_cache(new_router, m);
  const grid::TileGrid tiles(m);
  const auto stats = new_cache.adopt(old_cache, tiles.padded_bits(extra));

  EXPECT_EQ(stats.carried, 1u);
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(new_cache.size(), 1u);

  // The carried entry answers as a hit and equals a fresh computation.
  const std::uint64_t hits_before = new_cache.hits();
  const Route& carried = new_cache.lookup(far_src, far_dst);
  EXPECT_EQ(new_cache.hits(), hits_before + 1);
  const Route fresh = new_router.route(far_src, far_dst);
  EXPECT_EQ(carried.status, fresh.status);
  EXPECT_EQ(carried.path, fresh.path);

  // The dropped entry recomputes under the new blocked set — and differs
  // from the old epoch's answer (the detour grew), proving invalidation was
  // necessary.
  const Route& recomputed = new_cache.lookup(near_src, near_dst);
  EXPECT_EQ(recomputed.path, new_router.route(near_src, near_dst).path);
  EXPECT_NE(recomputed.path, near_before.path);
}

// Exhaustive soundness sweep: carry over every pair of a dense probe set,
// then check each surviving entry against a fresh computation under the
// changed blocked set. Any footprint under-approximation would surface as a
// stale path here.
TEST(RouteCacheTest, AdoptedEntriesMatchFreshRoutesExhaustively) {
  for (const auto topology : {mesh::Topology::Mesh, mesh::Topology::Torus}) {
    const Mesh2D m(16, 16, topology);
    const grid::CellSet old_blocked{m, {{4, 4}}};
    const FaultRingRouter old_router(m, old_blocked);
    RouteCache old_cache(old_router, m);

    std::vector<std::pair<Coord, Coord>> pairs;
    for (int sy = 0; sy < 16; sy += 3) {
      for (int sx = 0; sx < 16; sx += 3) {
        for (int dy = 1; dy < 16; dy += 5) {
          for (int dx = 2; dx < 16; dx += 5) {
            const Coord src{sx, sy}, dst{dx, dy};
            if (src == dst || old_blocked.contains(src) ||
                old_blocked.contains(dst)) {
              continue;
            }
            pairs.emplace_back(src, dst);
            (void)old_cache.lookup(src, dst);
          }
        }
      }
    }

    const grid::CellSet new_blocked{m, {{4, 4}, {11, 12}}};
    const FaultRingRouter new_router(m, new_blocked);
    RouteCache new_cache(new_router, m);
    const grid::TileGrid tiles(m);
    const auto stats = new_cache.adopt(old_cache, tiles.padded_bits({11, 12}));
    ASSERT_EQ(stats.carried + stats.invalidated, pairs.size());
    ASSERT_GE(stats.carried, 1u);

    const std::uint64_t size_after_adopt = new_cache.size();
    for (const auto& [src, dst] : pairs) {
      const Route& served = new_cache.lookup(src, dst);
      const Route fresh = new_router.route(src, dst);
      ASSERT_EQ(served.status, fresh.status)
          << "topology " << static_cast<int>(topology) << " "
          << mesh::to_string(src) << " -> " << mesh::to_string(dst);
      ASSERT_EQ(served.path, fresh.path)
          << "topology " << static_cast<int>(topology) << " "
          << mesh::to_string(src) << " -> " << mesh::to_string(dst);
    }
    // Carried entries were hits; invalidated ones missed and repopulated.
    EXPECT_EQ(new_cache.hits(), stats.carried);
    EXPECT_EQ(new_cache.misses(), stats.invalidated);
    EXPECT_EQ(size_after_adopt, stats.carried);
  }
}

// Adoption must tolerate the previous cache still serving (and inserting)
// concurrently — the ingest thread publishes the next epoch while query
// threads keep hitting the current one.
TEST(RouteCacheTest, AdoptRacesLookupsOnThePreviousEpochSafely) {
  const Mesh2D m(16, 16);
  const grid::CellSet blocked{m, {{7, 7}}};
  const FaultRingRouter router(m, blocked);
  RouteCache prev(router, m);

  constexpr int kReaders = 4;
  constexpr int kAdopts = 50;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&prev, &stop, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const Coord src{t, (t + i) % 16};
        const Coord dst{15 - i % 4, (i / 4) % 16};
        if (src == dst) continue;
        const auto route = prev.lookup_shared(src, dst);
        ASSERT_NE(route, nullptr);
      }
    });
  }
  const grid::TileGrid tiles(m);
  for (int i = 0; i < kAdopts; ++i) {
    RouteCache next(router, m);
    const auto stats = next.adopt(prev, tiles.padded_bits({7, 7}));
    // Whatever was carried must be consistent: carried + invalidated is a
    // snapshot of prev's size at some instant during the copy.
    EXPECT_EQ(next.size(), stats.carried);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
}

}  // namespace
}  // namespace ocp::routing
