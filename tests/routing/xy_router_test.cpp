#include <gtest/gtest.h>

#include "routing/router.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(EcubeDirectionTest, CorrectsXFirst) {
  EXPECT_EQ(ecube_direction({0, 0}, {3, 3}), mesh::Dir::East);
  EXPECT_EQ(ecube_direction({5, 0}, {3, 3}), mesh::Dir::West);
  EXPECT_EQ(ecube_direction({3, 0}, {3, 3}), mesh::Dir::North);
  EXPECT_EQ(ecube_direction({3, 5}, {3, 3}), mesh::Dir::South);
  EXPECT_EQ(ecube_direction({3, 3}, {3, 3}), std::nullopt);
}

TEST(XYRouterTest, FaultFreeRouteIsMinimalAndLShaped) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const Route r = router.route({1, 1}, {6, 4});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 8);
  EXPECT_EQ(r.path.front(), (Coord{1, 1}));
  EXPECT_EQ(r.path.back(), (Coord{6, 4}));
  // X is corrected before Y.
  EXPECT_EQ(r.path[1], (Coord{2, 1}));
  EXPECT_EQ(r.path[5], (Coord{6, 1}));
  EXPECT_EQ(r.detour_hops(), 0);
}

TEST(XYRouterTest, SelfRouteIsEmptyDelivered) {
  const Mesh2D m(5, 5);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const Route r = router.route({2, 2}, {2, 2});
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 0);
}

TEST(XYRouterTest, BlockedEndpointIsInvalid) {
  const Mesh2D m(5, 5);
  const grid::CellSet blocked{m, {{2, 2}}};
  const XYRouter router(m, blocked);
  EXPECT_EQ(router.route({2, 2}, {4, 4}).status, RouteStatus::Invalid);
  EXPECT_EQ(router.route({0, 0}, {2, 2}).status, RouteStatus::Invalid);
  EXPECT_EQ(router.route({9, 9}, {0, 0}).status, RouteStatus::Invalid);
}

TEST(XYRouterTest, StopsAtBlockedHop) {
  const Mesh2D m(7, 7);
  const grid::CellSet blocked{m, {{3, 1}}};
  const XYRouter router(m, blocked);
  const Route r = router.route({1, 1}, {5, 1});
  EXPECT_EQ(r.status, RouteStatus::Blocked);
  EXPECT_EQ(r.path.back(), (Coord{2, 1}));  // stopped right before the wall
}

TEST(XYRouterTest, UnaffectedByOffPathFaults) {
  const Mesh2D m(7, 7);
  // XY from (0,0) to (6,6) passes along row y = 0 then column x = 6;
  // these faults sit away from that L.
  const grid::CellSet blocked{m, {{0, 6}, {3, 3}}};
  const XYRouter router(m, blocked);
  const Route r = router.route({0, 0}, {6, 6});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 12);
}

TEST(XYRouterTest, AllPhasesAreZero) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const XYRouter router(m, blocked);
  const Route r = router.route({0, 7}, {7, 0});
  ASSERT_TRUE(r.delivered());
  for (std::uint8_t p : r.phase) EXPECT_EQ(p, 0);
}

}  // namespace
}  // namespace ocp::routing
