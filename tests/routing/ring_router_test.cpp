#include <gtest/gtest.h>

#include <unordered_set>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "routing/router.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

grid::CellSet blocked_from_region(const Mesh2D& m, const geom::Region& r) {
  return fault::to_fault_set(m, r);
}

TEST(FaultRingRouterTest, FaultFreeBehavesLikeXY) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const FaultRingRouter ring(m, blocked);
  const XYRouter xy(m, blocked);
  const Route a = ring.route({1, 2}, {8, 7});
  const Route b = xy.route({1, 2}, {8, 7});
  ASSERT_TRUE(a.delivered());
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.detour_hops(), 0);
}

TEST(FaultRingRouterTest, DetoursAroundRectangle) {
  const Mesh2D m(12, 12);
  const auto blocked =
      blocked_from_region(m, fault::make_rectangle({4, 3}, 3, 4));
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({1, 4}, {10, 4});
  ASSERT_TRUE(r.delivered());
  EXPECT_GT(r.detour_hops(), 0);
  for (Coord c : r.path) EXPECT_FALSE(blocked.contains(c));
}

TEST(FaultRingRouterTest, BothHandsDeliverAroundRectangle) {
  const Mesh2D m(12, 12);
  const auto blocked =
      blocked_from_region(m, fault::make_rectangle({4, 4}, 4, 4));
  for (Hand hand : {Hand::Left, Hand::Right}) {
    const FaultRingRouter router(m, blocked, hand);
    const Route r = router.route({2, 6}, {10, 6});
    ASSERT_TRUE(r.delivered());
    EXPECT_GE(r.hops(), 8);
  }
}

TEST(FaultRingRouterTest, DeliversAroundOrthogonalConvexShapes) {
  const Mesh2D m(16, 16);
  const geom::Region shapes[] = {
      fault::make_l_shape({5, 5}, 5, 2),
      fault::make_t_shape({5, 5}, 5, 3),
      fault::make_plus_shape({8, 8}, 3),
  };
  for (const auto& shape : shapes) {
    const auto blocked = blocked_from_region(m, shape);
    const FaultRingRouter router(m, blocked);
    // All pairs among a set of probe nodes on different sides.
    const Coord probes[] = {{0, 0}, {15, 15}, {0, 15}, {15, 0},
                            {8, 0},  {0, 8},  {15, 8}, {8, 15}};
    for (Coord src : probes) {
      for (Coord dst : probes) {
        if (src == dst) continue;
        const Route r = router.route(src, dst);
        ASSERT_TRUE(r.delivered())
            << "from " << mesh::to_string(src) << " to "
            << mesh::to_string(dst) << "\n"
            << shape.to_ascii();
        for (Coord c : r.path) ASSERT_FALSE(blocked.contains(c));
      }
    }
  }
}

TEST(FaultRingRouterTest, PathNeverRevisitsNodeAroundConvexRegion) {
  // Progressiveness around orthogonal convex regions: the route never
  // visits the same node twice (no backtracking).
  const Mesh2D m(16, 16);
  const auto blocked = blocked_from_region(m, fault::make_plus_shape({8, 8}, 3));
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({1, 8}, {15, 8});
  ASSERT_TRUE(r.delivered());
  std::unordered_set<Coord> seen(r.path.begin(), r.path.end());
  EXPECT_EQ(seen.size(), r.path.size());
}

TEST(FaultRingRouterTest, RegionTouchingMeshEdge) {
  // Obstacle flush against the south edge: the detour must go over the top.
  const Mesh2D m(12, 12);
  const auto blocked =
      blocked_from_region(m, fault::make_rectangle({5, 0}, 2, 4));
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({2, 1}, {10, 1});
  ASSERT_TRUE(r.delivered());
  for (Coord c : r.path) {
    EXPECT_TRUE(m.contains(c));
    EXPECT_FALSE(blocked.contains(c));
  }
}

TEST(FaultRingRouterTest, DeliversOnLabeledRandomInstances) {
  // End-to-end guarantee the paper motivates: with disabled regions
  // (orthogonal convex polygons) as blocked cells, routing always succeeds.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Mesh2D m(24, 24);
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 35, rng);
    const auto result = labeling::run_pipeline(faults);
    const auto blocked = labeling::disabled_cells(result.activation);
    const FaultRingRouter router(m, blocked);

    stats::Rng pair_rng(seed + 1000);
    for (int i = 0; i < 60; ++i) {
      const auto src = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          pair_rng.uniform_int(0, m.node_count() - 1)));
      if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
        continue;
      }
      const Route r = router.route(src, dst);
      ASSERT_TRUE(r.delivered())
          << "seed " << seed << " " << mesh::to_string(src) << " -> "
          << mesh::to_string(dst) << " status " << to_string(r.status);
    }
  }
}

TEST(FaultRingRouterTest, ConcavePocketForcesBacktracking) {
  // A width-1 dead-end slot aligned with the route: the e-cube hop walks in,
  // hits the back wall, and the wall-follower must retrace the same corridor
  // cells to get out — backtracking, which the paper's progressive-routing
  // argument rules out for *convex* regions (and which our convex-region
  // tests above show never happens).
  const Mesh2D m(16, 16);
  std::vector<Coord> cells;
  for (std::int32_t x = 5; x <= 10; ++x) {
    cells.push_back({x, 6});  // slot floor
    cells.push_back({x, 8});  // slot ceiling
  }
  cells.push_back({10, 7});  // back wall; corridor y = 7, x in [5, 9]
  const auto blocked = blocked_from_region(m, geom::Region(cells));
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({2, 7}, {13, 7});
  ASSERT_TRUE(r.delivered());
  std::unordered_set<Coord> seen(r.path.begin(), r.path.end());
  EXPECT_LT(seen.size(), r.path.size())
      << "expected the dead-end corridor to be retraced";
}

TEST(FaultRingRouterTest, UnreachableEnclosedDestinationReportsLivelock) {
  // A destination sealed inside a blocked box can never be reached; the
  // router must terminate with Livelock instead of spinning forever.
  const Mesh2D m(12, 12);
  grid::CellSet blocked(m);
  const geom::Region box = fault::make_rectangle({4, 4}, 3, 3);
  for (Coord c : box.cells()) {
    if (c != Coord{5, 5}) blocked.insert(c);
  }
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({0, 0}, {5, 5});
  EXPECT_EQ(r.status, RouteStatus::Livelock);
}

TEST(FaultRingRouterTest, StretchIsBoundedByPerimeter) {
  const Mesh2D m(20, 20);
  const geom::Region obstacle = fault::make_rectangle({6, 6}, 6, 6);
  const auto blocked = blocked_from_region(m, obstacle);
  const FaultRingRouter router(m, blocked);
  const Route r = router.route({2, 9}, {17, 9});
  ASSERT_TRUE(r.delivered());
  const std::int32_t minimal = mesh::manhattan({2, 9}, {17, 9});
  EXPECT_LE(r.hops(), minimal + 2 * (6 + 6));
}

}  // namespace
}  // namespace ocp::routing
