#include <gtest/gtest.h>

#include <unordered_set>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "routing/adaptive_router.hpp"

namespace ocp::routing {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(AdaptiveRouterTest, FaultFreeRouteIsMinimal) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const AdaptiveRouter router(m, blocked);
  const Route r = router.route({1, 1}, {7, 5});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 10);
  EXPECT_EQ(r.detour_hops(), 0);
}

TEST(AdaptiveRouterTest, DodgesSingleFaultWithoutDetourPhase) {
  // XY would hit the fault head-on; adaptive slides around it minimally.
  const Mesh2D m(10, 10);
  const grid::CellSet blocked{m, {{4, 1}}};
  const AdaptiveRouter router(m, blocked);
  const Route r = router.route({1, 1}, {8, 4});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), mesh::manhattan({1, 1}, {8, 4}));  // still minimal
  EXPECT_EQ(r.detour_hops(), 0);
}

TEST(AdaptiveRouterTest, MinimalAroundRectangleWhenPathsExist) {
  // Destination diagonal across a blocked rectangle: the minimal-path
  // rectangle is wide enough to slip around the obstacle with zero stretch.
  const Mesh2D m(14, 14);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({5, 5}, 3, 3));
  const AdaptiveRouter router(m, blocked);
  const Route r = router.route({2, 2}, {11, 11});
  ASSERT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), mesh::manhattan({2, 2}, {11, 11}));
  EXPECT_EQ(r.detour_hops(), 0);
}

TEST(AdaptiveRouterTest, FallsBackToDetourWhenWalledIn) {
  // Straight shot at a wall spanning the whole minimal rectangle: no
  // minimal path exists, so the router must misroute (detour hops > 0).
  const Mesh2D m(14, 14);
  const auto blocked =
      fault::to_fault_set(m, fault::make_rectangle({6, 4}, 1, 7));
  const AdaptiveRouter router(m, blocked);
  const Route r = router.route({2, 7}, {11, 7});
  ASSERT_TRUE(r.delivered());
  EXPECT_GT(r.hops(), mesh::manhattan({2, 7}, {11, 7}));
  EXPECT_GT(r.detour_hops(), 0);
}

TEST(AdaptiveRouterTest, ShorterThanDeterministicRingRouterInAggregate) {
  // Per-pair, the adaptive router can very occasionally lose a couple of
  // hops to the deterministic router (its greedy choice may pick the side
  // of an obstacle with the longer way around); in aggregate it wins.
  const Mesh2D m(20, 20);
  std::int64_t adaptive_hops = 0;
  std::int64_t ring_hops = 0;
  std::int64_t adaptive_detours = 0;
  std::int64_t ring_detours = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 25, rng);
    const auto result = labeling::run_pipeline(faults);
    const auto blocked = labeling::disabled_cells(result.activation);
    const AdaptiveRouter adaptive(m, blocked);
    const FaultRingRouter ring(m, blocked);
    stats::Rng pairs(seed + 99);
    for (int i = 0; i < 40; ++i) {
      const auto src = m.coord(static_cast<std::size_t>(
          pairs.uniform_int(0, m.node_count() - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          pairs.uniform_int(0, m.node_count() - 1)));
      if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
        continue;
      }
      const Route a = adaptive.route(src, dst);
      const Route e = ring.route(src, dst);
      ASSERT_TRUE(a.delivered());
      ASSERT_TRUE(e.delivered());
      adaptive_hops += a.hops();
      ring_hops += e.hops();
      adaptive_detours += a.detour_hops();
      ring_detours += e.detour_hops();
    }
  }
  EXPECT_LE(adaptive_hops, ring_hops);
  EXPECT_LE(adaptive_detours, ring_detours);
}

TEST(AdaptiveRouterTest, DeliversOnAllPairsOverLabeledRegions) {
  const Mesh2D m(16, 16);
  stats::Rng rng(4);
  const auto faults = fault::uniform_random(m, 20, rng);
  const auto result = labeling::run_pipeline(faults);
  const auto blocked = labeling::disabled_cells(result.activation);
  const AdaptiveRouter router(m, blocked);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
       i += 7) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(m.node_count());
         j += 5) {
      const Coord src = m.coord(i);
      const Coord dst = m.coord(j);
      if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
        continue;
      }
      const Route r = router.route(src, dst);
      ASSERT_TRUE(r.delivered());
      for (Coord c : r.path) ASSERT_FALSE(blocked.contains(c));
    }
  }
}

TEST(AdaptiveRouterTest, BlockedEndpointsAreInvalid) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked{m, {{3, 3}}};
  const AdaptiveRouter router(m, blocked);
  EXPECT_EQ(router.route({3, 3}, {0, 0}).status, RouteStatus::Invalid);
  EXPECT_EQ(router.route({0, 0}, {3, 3}).status, RouteStatus::Invalid);
}

TEST(AdaptiveRouterTest, NoRevisitsAroundConvexRegions) {
  const Mesh2D m(16, 16);
  const auto blocked =
      fault::to_fault_set(m, fault::make_plus_shape({8, 8}, 3));
  const AdaptiveRouter router(m, blocked);
  const Route r = router.route({1, 8}, {15, 8});
  ASSERT_TRUE(r.delivered());
  std::unordered_set<Coord> seen(r.path.begin(), r.path.end());
  EXPECT_EQ(seen.size(), r.path.size());
}

}  // namespace
}  // namespace ocp::routing
