// Wormhole simulator tests: pipelining, channel contention, the classic
// four-worm turn-cycle deadlock, and its resolution by virtual channels.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "fault/shapes.hpp"
#include "netsim/wormhole.hpp"
#include "routing/traffic.hpp"

namespace ocp::netsim {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

PacketSpec straight_worm(std::int32_t y, std::int32_t x0, std::int32_t x1,
                         std::int32_t flits, std::int64_t when = 0) {
  PacketSpec spec;
  for (std::int32_t x = x0; x <= x1; ++x) spec.path.push_back({x, y});
  spec.vcs.assign(spec.path.size() - 1, 0);
  spec.length_flits = flits;
  spec.inject_cycle = when;
  return spec;
}

TEST(WormholeTest, SingleWormPipelinesAcrossTheMesh) {
  const Mesh2D m(10, 10);
  WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 2});
  sim.submit(straight_worm(0, 0, 9, 4));
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_EQ(result.stuck, 0u);
  // Wormhole pipelining: latency ~ hops + flits, far below hops * flits.
  EXPECT_GE(result.latency.mean(), 9.0);
  EXPECT_LE(result.latency.mean(), 9.0 + 4.0 + 4.0);
}

TEST(WormholeTest, UncontendedLatencyIsHopsPlusFlitsMinusOne) {
  // The textbook wormhole pipeline law: with no contention a worm's tail is
  // absorbed hops + flits - 1 cycles after injection, independent of the
  // virtual-channel buffer depth. Swept over hop counts, lengths and
  // buffer sizes.
  const Mesh2D m(12, 2);
  for (int hops : {1, 3, 4, 9}) {
    for (int flits : {1, 2, 4, 8}) {
      for (int buffer : {1, 2, 4}) {
        WormholeSim sim(m, {.num_vcs = 1,
                            .vc_buffer_flits = static_cast<std::int32_t>(
                                buffer)});
        PacketSpec spec;
        for (int x = 0; x <= hops; ++x) spec.path.push_back({x, 0});
        spec.vcs.assign(spec.path.size() - 1, 0);
        spec.length_flits = flits;
        sim.submit(std::move(spec));
        const auto result = sim.run();
        ASSERT_EQ(result.delivered, 1u);
        EXPECT_EQ(result.packets[0].latency(), hops + flits - 1)
            << "hops " << hops << " flits " << flits << " buffer " << buffer;
      }
    }
  }
}

TEST(WormholeTest, ZeroHopWormIsAbsorbedLocally) {
  const Mesh2D m(4, 4);
  WormholeSim sim(m, {});
  PacketSpec spec;
  spec.path = {{2, 2}};
  spec.length_flits = 3;
  sim.submit(spec);
  const auto result = sim.run();
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_FALSE(result.deadlocked);
}

TEST(WormholeTest, SharedChannelSerializesWorms) {
  const Mesh2D m(12, 4);
  WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 2});
  // Two worms over the same row segment, same VC: the second waits for the
  // first to release the channels.
  sim.submit(straight_worm(1, 0, 10, 6));
  sim.submit(straight_worm(1, 0, 10, 6));
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 2u);
  EXPECT_GT(result.packets[1].latency(), result.packets[0].latency());
}

TEST(WormholeTest, DisjointWormsDoNotInterfere) {
  const Mesh2D m(12, 4);
  WormholeSim sim(m, {});
  sim.submit(straight_worm(0, 0, 10, 5));
  sim.submit(straight_worm(2, 0, 10, 5));
  const auto result = sim.run();
  EXPECT_EQ(result.delivered, 2u);
  EXPECT_EQ(result.packets[0].latency(), result.packets[1].latency());
}

TEST(WormholeTest, InjectCycleDelaysAWorm) {
  const Mesh2D m(12, 4);
  WormholeSim sim(m, {});
  sim.submit(straight_worm(0, 0, 10, 4, /*when=*/100));
  const auto result = sim.run();
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_GE(result.packets[0].finish_cycle, 100 + 10);
  EXPECT_FALSE(result.deadlocked);
}

/// The canonical wormhole deadlock: four long worms whose routes form a
/// directed turn cycle around a square. Each acquires its first leg and
/// blocks on a channel the next worm holds.
std::vector<PacketSpec> turn_cycle(std::int32_t flits) {
  const Coord a{2, 2};
  const Coord b{6, 2};
  const Coord c{6, 6};
  const Coord d{2, 6};
  const auto leg = [](Coord from, Coord to) {
    std::vector<Coord> cells;
    Coord cur = from;
    cells.push_back(cur);
    while (cur != to) {
      if (cur.x != to.x) cur.x += to.x > cur.x ? 1 : -1;
      else cur.y += to.y > cur.y ? 1 : -1;
      cells.push_back(cur);
    }
    return cells;
  };
  const auto two_legs = [&](Coord p, Coord q, Coord r) {
    auto cells = leg(p, q);
    auto second = leg(q, r);
    cells.insert(cells.end(), second.begin() + 1, second.end());
    PacketSpec spec;
    spec.path = std::move(cells);
    spec.vcs.assign(spec.path.size() - 1, 0);
    spec.length_flits = flits;
    return spec;
  };
  return {two_legs(a, b, c), two_legs(b, c, d), two_legs(c, d, a),
          two_legs(d, a, b)};
}

TEST(WormholeTest, TurnCycleDeadlocksOnOneVirtualChannel) {
  const Mesh2D m(10, 10);
  WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 1,
                      .deadlock_threshold = 64});
  for (auto& spec : turn_cycle(/*flits=*/32)) sim.submit(std::move(spec));
  const auto result = sim.run();
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.stuck, 4u);
  EXPECT_EQ(result.delivered, 0u);
}

TEST(WormholeTest, SecondVirtualChannelBreaksTheTurnCycle) {
  const Mesh2D m(10, 10);
  WormholeSim sim(m, {.num_vcs = 2, .vc_buffer_flits = 1,
                      .deadlock_threshold = 64});
  // Dateline-style assignment: each worm's second leg rides VC 1, so the
  // channel dependency cycle is cut.
  auto specs = turn_cycle(/*flits=*/32);
  for (auto& spec : specs) {
    for (std::size_t h = spec.vcs.size() / 2; h < spec.vcs.size(); ++h) {
      spec.vcs[h] = 1;
    }
    sim.submit(std::move(spec));
  }
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 4u);
}

TEST(WormholeTest, ShortTurnCycleWormsSlipThrough) {
  // With short worms (tail releases early) the same cyclic routes complete:
  // wormhole deadlock needs worms long enough to span their whole leg.
  const Mesh2D m(10, 10);
  WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 4,
                      .deadlock_threshold = 256});
  for (auto& spec : turn_cycle(/*flits=*/1)) sim.submit(std::move(spec));
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 4u);
}

TEST(WormholeTest, XYTrafficNeverDeadlocks) {
  // Dimension-order routes have an acyclic channel graph: any worm load is
  // deadlock-free on one virtual channel.
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 2});
  stats::Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst) continue;
    sim.submit(make_packet(router.route(src, dst), 1, 6,
                           rng.uniform_int(0, 40)));
  }
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.stuck, 0u);
}

TEST(WormholeTest, RingDetourTrafficWithEscapeVCDelivers) {
  // Fault-tolerant routes around labeled convex regions, detour hops on a
  // dedicated virtual channel: the whole load drains.
  const Mesh2D m(14, 14);
  stats::Rng rng(9);
  const auto faults = fault::uniform_random(m, 12, rng);
  const auto result_label = labeling::run_pipeline(faults);
  const auto blocked = labeling::disabled_cells(result_label.activation);
  const routing::FaultRingRouter router(m, blocked);

  WormholeSim sim(m, {.num_vcs = 2, .vc_buffer_flits = 2});
  int submitted = 0;
  for (int i = 0; submitted < 40 && i < 400; ++i) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
      continue;
    }
    const auto route = router.route(src, dst);
    if (!route.delivered()) continue;
    sim.submit(make_packet(route, 2, 4, rng.uniform_int(0, 60)));
    ++submitted;
  }
  ASSERT_GT(submitted, 0);
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, static_cast<std::size_t>(submitted));
}

TEST(WormholeTest, RejectsMalformedSpecs) {
  const Mesh2D m(6, 6);
  WormholeSim sim(m, {.num_vcs = 1});
  PacketSpec empty;
  EXPECT_THROW(sim.submit(empty), std::invalid_argument);

  PacketSpec teleport;
  teleport.path = {{0, 0}, {2, 0}};  // not a link
  teleport.vcs = {0};
  EXPECT_THROW(sim.submit(teleport), std::invalid_argument);

  PacketSpec bad_vc;
  bad_vc.path = {{0, 0}, {1, 0}};
  bad_vc.vcs = {3};  // only vc 0 exists
  EXPECT_THROW(sim.submit(bad_vc), std::invalid_argument);

  PacketSpec zero_flits;
  zero_flits.path = {{0, 0}, {1, 0}};
  zero_flits.vcs = {0};
  zero_flits.length_flits = 0;
  EXPECT_THROW(sim.submit(zero_flits), std::invalid_argument);
}

TEST(WormholeTest, HigherLoadRaisesLatency) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  const auto run_load = [&](int packets) {
    WormholeSim sim(m, {.num_vcs = 1, .vc_buffer_flits = 2});
    stats::Rng rng(11);
    for (int i = 0; i < packets; ++i) {
      const auto src = m.coord(static_cast<std::size_t>(
          rng.uniform_int(0, m.node_count() - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          rng.uniform_int(0, m.node_count() - 1)));
      if (src == dst) continue;
      sim.submit(make_packet(router.route(src, dst), 1, 8, 0));
    }
    return sim.run();
  };
  const auto light = run_load(5);
  const auto heavy = run_load(80);
  EXPECT_FALSE(light.deadlocked);
  EXPECT_FALSE(heavy.deadlocked);
  EXPECT_GT(heavy.latency.mean(), light.latency.mean());
}

}  // namespace
}  // namespace ocp::netsim
