#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/traffic_sim.hpp"

namespace ocp::netsim {
namespace {

using mesh::Mesh2D;

TEST(TrafficSimTest, LightLoadDrainsCompletely) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig config;
  config.injection_rate = 0.002;
  config.warm_cycles = 256;
  config.num_vcs = 1;
  const auto result = run_traffic_sim(m, blocked, router, config);
  EXPECT_GT(result.offered_packets, 0u);
  EXPECT_EQ(result.delivered_packets, result.offered_packets);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.accepted_flits_per_node_cycle, 0.0);
}

TEST(TrafficSimTest, DeterministicForSeed) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig config;
  config.seed = 42;
  config.warm_cycles = 128;
  const auto a = run_traffic_sim(m, blocked, router, config);
  const auto b = run_traffic_sim(m, blocked, router, config);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

TEST(TrafficSimTest, LatencyRisesWithLoad) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig light;
  light.injection_rate = 0.001;
  light.warm_cycles = 512;
  light.num_vcs = 1;
  TrafficSimConfig heavy = light;
  heavy.injection_rate = 0.02;
  const auto l = run_traffic_sim(m, blocked, router, light);
  const auto h = run_traffic_sim(m, blocked, router, heavy);
  ASSERT_FALSE(l.deadlocked);
  ASSERT_FALSE(h.deadlocked);
  EXPECT_GT(h.latency.mean(), l.latency.mean());
  EXPECT_GT(h.accepted_flits_per_node_cycle,
            l.accepted_flits_per_node_cycle);
}

TEST(TrafficSimTest, FaultTolerantLoadOverLabeledRegions) {
  const Mesh2D m(16, 16);
  stats::Rng rng(7);
  const auto faults = fault::uniform_random(m, 16, rng);
  const auto labeled = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);
  TrafficSimConfig config;
  config.injection_rate = 0.004;
  config.warm_cycles = 384;
  config.num_vcs = 2;  // detours on the escape channel
  const auto result = run_traffic_sim(m, blocked, router, config);
  EXPECT_GT(result.offered_packets, 0u);
  EXPECT_EQ(result.delivered_packets, result.offered_packets);
  EXPECT_FALSE(result.deadlocked);
}

TEST(TrafficSimTest, MessageClassSchemeNeedsFourVcs) {
  const Mesh2D m(8, 8);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig config;
  config.vc_scheme = VcScheme::MessageClass;
  config.num_vcs = 2;
  EXPECT_THROW(static_cast<void>(run_traffic_sim(m, blocked, router, config)),
               std::invalid_argument);
}

TEST(TrafficSimTest, MessageClassSchemeDrainsModerateFaultyLoad) {
  // The load level where the naive escape scheme already struggles on this
  // instance: class separation keeps it deadlock-free.
  const Mesh2D m(16, 16);
  stats::Rng rng(21);
  const auto faults = fault::clustered(m, 2, 8, rng);
  const auto labeled = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);
  TrafficSimConfig config;
  config.vc_scheme = VcScheme::MessageClass;
  config.num_vcs = 4;
  config.injection_rate = 0.006;
  config.warm_cycles = 384;
  const auto result = run_traffic_sim(m, blocked, router, config);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered_packets, result.offered_packets);
}

TEST(TrafficSimTest, FullyBlockedMachineIsVacuous) {
  const Mesh2D m(4, 4);
  grid::CellSet blocked(m);
  for (std::size_t i = 0; i < 16; ++i) blocked.insert(m.coord(i));
  const routing::XYRouter router(m, blocked);
  const auto result = run_traffic_sim(m, blocked, router, {});
  EXPECT_EQ(result.offered_packets, 0u);
  EXPECT_EQ(result.delivered_packets, 0u);
}

}  // namespace
}  // namespace ocp::netsim
