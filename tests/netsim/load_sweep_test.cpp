// Deterministic parallel load sweeps: output must be bit-identical across
// OpenMP thread counts and repeated runs, the route cache must be an exact
// drop-in for direct routing, and the saturation bisection must keep its
// bracket invariants and reproduce itself.
#include <gtest/gtest.h>

#ifdef OCP_HAVE_OPENMP
#include <omp.h>
#endif

#include "analysis/trial_pool.hpp"
#include "netsim/load_sweep.hpp"

namespace ocp::netsim {
namespace {

using mesh::Mesh2D;

LoadSweepConfig small_sweep() {
  LoadSweepConfig config;
  config.injection_rates = {0.001, 0.004, 0.008};
  config.trials = 3;
  config.base.warm_cycles = 128;
  config.base.num_vcs = 2;
  config.seed = 97;
  return config;
}

void expect_same_point(const LoadPoint& a, const LoadPoint& b,
                       const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.injection_rate, b.injection_rate);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.deadlocked_trials, b.deadlocked_trials);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.unroutable_packets, b.unroutable_packets);
  EXPECT_EQ(a.flit_moves, b.flit_moves);
  EXPECT_EQ(a.latency_overflow, b.latency_overflow);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  // Bit-identical merges: trial reduction always runs serially in trial
  // order, whatever the worker thread count was.
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.variance(), b.latency.variance());
  EXPECT_EQ(a.accepted.mean(), b.accepted.mean());
  ASSERT_EQ(a.latency_hist.bin_count(), b.latency_hist.bin_count());
  for (std::size_t i = 0; i < a.latency_hist.bin_count(); ++i) {
    EXPECT_EQ(a.latency_hist.bin(i), b.latency_hist.bin(i)) << "bin " << i;
  }
}

TEST(LoadSweepTest, DeterministicAcrossRuns) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  const auto config = small_sweep();
  const auto a = run_load_sweep(m, blocked, router, config);
  const auto b = run_load_sweep(m, blocked, router, config);
  ASSERT_EQ(a.points.size(), config.injection_rates.size());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    expect_same_point(a.points[i], b.points[i],
                      "rate " + std::to_string(a.points[i].injection_rate));
  }
}

#ifdef OCP_HAVE_OPENMP
TEST(LoadSweepTest, ThreadCountInvariant) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  const auto config = small_sweep();

  std::vector<LoadSweepResult> results;
  for (const int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    results.push_back(run_load_sweep(m, blocked, router, config));
  }
  omp_set_num_threads(omp_get_num_procs());

  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].points.size(), results[r].points.size());
    for (std::size_t i = 0; i < results[0].points.size(); ++i) {
      expect_same_point(results[0].points[i], results[r].points[i],
                        "thread variant " + std::to_string(r) + ", rate " +
                            std::to_string(results[0].points[i].injection_rate));
    }
  }
}
#endif

TEST(LoadSweepTest, LoadPointsRespondToLoad) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  LoadSweepConfig config;
  config.injection_rates = {0.001, 0.015};
  config.trials = 3;
  config.base.warm_cycles = 384;
  config.base.num_vcs = 2;
  const auto result = run_load_sweep(m, blocked, router, config);
  ASSERT_EQ(result.points.size(), 2u);
  const LoadPoint& light = result.points[0];
  const LoadPoint& heavy = result.points[1];
  EXPECT_GT(light.offered_packets, 0u);
  EXPECT_EQ(light.deadlocked_trials, 0u);
  EXPECT_EQ(light.delivered_packets, light.offered_packets);
  EXPECT_GT(heavy.offered_packets, light.offered_packets);
  EXPECT_GT(heavy.latency.mean(), light.latency.mean());
  EXPECT_GT(heavy.flit_moves, light.flit_moves);
  EXPECT_DOUBLE_EQ(light.offered_flits_per_node_cycle(4), 0.004);
}

TEST(LoadSweepTest, SweepMatchesIndependentTrafficSims) {
  // A sweep cell is exactly run_traffic_sim with the forked seed — the
  // shared route cache and the parallel grid change nothing.
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  LoadSweepConfig config;
  config.injection_rates = {0.003};
  config.trials = 2;
  config.base.warm_cycles = 128;
  config.seed = 5;
  const auto sweep = run_load_sweep(m, blocked, router, config);

  stats::Rng seeder(config.seed);
  const auto seeds = analysis::fork_trial_seeds(seeder, 2);
  LoadPoint manual;
  manual.injection_rate = 0.003;
  manual.trials = 2;
  for (const std::uint64_t seed : seeds) {
    TrafficSimConfig trial = config.base;
    trial.injection_rate = 0.003;
    trial.seed = seed;
    const auto r = run_traffic_sim(m, blocked, router, trial);
    manual.deadlocked_trials += r.deadlocked ? 1 : 0;
    manual.offered_packets += r.offered_packets;
    manual.delivered_packets += r.delivered_packets;
    manual.unroutable_packets += r.unroutable_packets;
    manual.flit_moves += r.flit_moves;
    manual.latency_overflow += r.latency_overflow;
    manual.latency.merge(r.latency);
    manual.latency_hist.merge(r.latency_hist);
    manual.accepted.add(r.accepted_flits_per_node_cycle);
  }
  ASSERT_EQ(sweep.points.size(), 1u);
  expect_same_point(sweep.points[0], manual, "sweep vs manual trials");
}

TEST(LoadSweepTest, SaturationBisectionKeepsBracketInvariants) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  SaturationConfig config;
  config.lo = 0.001;
  config.hi = 0.05;
  config.latency_limit = 64.0;
  config.max_probes = 8;
  config.tolerance = 1e-4;
  config.trials = 2;
  config.base.warm_cycles = 256;
  config.base.num_vcs = 2;
  const auto result = find_saturation_rate(m, blocked, router, config);
  EXPECT_GE(result.lo, config.lo);
  EXPECT_LE(result.hi, config.hi);
  EXPECT_LE(result.lo, result.hi);
  EXPECT_GE(result.saturation_rate, result.lo);
  EXPECT_LE(result.saturation_rate, result.hi);
  EXPECT_LE(result.probes.size(),
            static_cast<std::size_t>(config.max_probes));
  EXPECT_GE(result.probes.size(), 2u);
  // The bracket actually tightened beyond the two endpoint probes.
  EXPECT_LT(result.hi - result.lo, config.hi - config.lo);

  const auto again = find_saturation_rate(m, blocked, router, config);
  EXPECT_EQ(result.saturation_rate, again.saturation_rate);
  EXPECT_EQ(result.lo, again.lo);
  EXPECT_EQ(result.hi, again.hi);
  ASSERT_EQ(result.probes.size(), again.probes.size());
  for (std::size_t i = 0; i < result.probes.size(); ++i) {
    expect_same_point(result.probes[i], again.probes[i],
                      "probe " + std::to_string(i));
  }
}

TEST(LoadSweepTest, SaturationCollapsesOnViolatedEndpoints) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  SaturationConfig config;
  config.trials = 2;
  config.base.warm_cycles = 192;
  config.base.num_vcs = 2;

  // Both endpoints far below saturation: the bracket collapses to hi.
  config.lo = 0.0005;
  config.hi = 0.001;
  config.latency_limit = 1e9;
  const auto unsat = find_saturation_rate(m, blocked, router, config);
  EXPECT_EQ(unsat.saturation_rate, config.hi);
  EXPECT_EQ(unsat.lo, unsat.hi);

  // An impossible latency limit saturates even lo: collapse to lo.
  config.latency_limit = 0.0;
  const auto sat = find_saturation_rate(m, blocked, router, config);
  EXPECT_EQ(sat.saturation_rate, config.lo);
  EXPECT_EQ(sat.probes.size(), 1u);
}

TEST(RouteCacheTrafficTest, CachedOverloadIsExactDropIn) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig config;
  config.injection_rate = 0.006;
  config.warm_cycles = 256;
  config.seed = 31;
  const auto direct = run_traffic_sim(m, blocked, router, config);

  routing::RouteCache routes(router, m);
  const auto cached = run_traffic_sim(m, blocked, config, routes);
  EXPECT_EQ(direct.offered_packets, cached.offered_packets);
  EXPECT_EQ(direct.delivered_packets, cached.delivered_packets);
  EXPECT_EQ(direct.unroutable_packets, cached.unroutable_packets);
  EXPECT_EQ(direct.deadlocked, cached.deadlocked);
  EXPECT_EQ(direct.cycles, cached.cycles);
  EXPECT_EQ(direct.flit_moves, cached.flit_moves);
  EXPECT_EQ(direct.latency.mean(), cached.latency.mean());
  EXPECT_GT(routes.size(), 0u);
  EXPECT_LE(routes.size(), m.node_count() * m.node_count());

  // Re-running against the now-warm cache changes nothing either.
  const auto warm = run_traffic_sim(m, blocked, config, routes);
  EXPECT_EQ(cached.delivered_packets, warm.delivered_packets);
  EXPECT_EQ(cached.cycles, warm.cycles);
  EXPECT_EQ(cached.latency.mean(), warm.latency.mean());
}

TEST(RouteCacheTrafficTest, KernelChoicePropagatesThroughTrafficSim) {
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig config;
  config.injection_rate = 0.008;
  config.warm_cycles = 256;
  config.seed = 77;
  config.kernel = SimKernel::Event;
  const auto event = run_traffic_sim(m, blocked, router, config);
  config.kernel = SimKernel::Sweep;
  const auto sweep = run_traffic_sim(m, blocked, router, config);
  EXPECT_EQ(event.delivered_packets, sweep.delivered_packets);
  EXPECT_EQ(event.cycles, sweep.cycles);
  EXPECT_EQ(event.flit_moves, sweep.flit_moves);
  EXPECT_EQ(event.latency.mean(), sweep.latency.mean());
  EXPECT_EQ(event.latency_overflow, sweep.latency_overflow);
}

TEST(RouteCacheTrafficTest, LatencyOverflowSurfacesClampedTail) {
  // Light load on an open mesh: every latency fits in the 4096-cycle
  // histogram, so the overflow counter stays zero and matches the
  // histogram's own count.
  const Mesh2D m(10, 10);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  TrafficSimConfig config;
  config.injection_rate = 0.003;
  config.warm_cycles = 256;
  const auto result = run_traffic_sim(m, blocked, router, config);
  EXPECT_EQ(result.latency_overflow, result.latency_hist.overflow());
  EXPECT_EQ(result.latency_overflow, 0u);
  EXPECT_LE(result.latency.max(), 4096.0);
}

}  // namespace
}  // namespace ocp::netsim
