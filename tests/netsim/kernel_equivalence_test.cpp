// Old-vs-new kernel equivalence: the event-driven worklist kernel must
// reproduce the reference sweep kernel bit-for-bit — same per-packet finish
// cycles, same deadlock verdicts, same cycle counts, same flit-move totals,
// same latency statistics — over seeded random packet batches on meshes and
// tori, plus the adversarial scenarios (turn cycles, wrap rings, sparse
// injection gaps the event kernel clock-jumps over, cycle caps).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/wormhole.hpp"
#include "routing/router.hpp"

namespace ocp::netsim {
namespace {

using mesh::Coord;
using mesh::Mesh2D;
using mesh::Topology;

SimResult run_with(const Mesh2D& m, SimConfig config, SimKernel kernel,
                   const std::vector<PacketSpec>& specs) {
  config.kernel = kernel;
  WormholeSim sim(m, config);
  for (const auto& spec : specs) sim.submit(spec);
  return sim.run();
}

void expect_identical(const Mesh2D& m, const SimConfig& config,
                      const std::vector<PacketSpec>& specs,
                      const std::string& what) {
  const SimResult event = run_with(m, config, SimKernel::Event, specs);
  const SimResult sweep = run_with(m, config, SimKernel::Sweep, specs);
  SCOPED_TRACE(what);
  EXPECT_EQ(event.deadlocked, sweep.deadlocked);
  EXPECT_EQ(event.cycles, sweep.cycles);
  EXPECT_EQ(event.delivered, sweep.delivered);
  EXPECT_EQ(event.stuck, sweep.stuck);
  EXPECT_EQ(event.flit_moves, sweep.flit_moves);
  EXPECT_EQ(event.latency.count(), sweep.latency.count());
  // Bit-identical, not approximately equal: completions happen in the same
  // order, so the Welford accumulator sees the same sequence.
  EXPECT_EQ(event.latency.mean(), sweep.latency.mean());
  EXPECT_EQ(event.latency.variance(), sweep.latency.variance());
  EXPECT_EQ(event.latency.min(), sweep.latency.min());
  EXPECT_EQ(event.latency.max(), sweep.latency.max());
  ASSERT_EQ(event.packets.size(), sweep.packets.size());
  for (std::size_t i = 0; i < event.packets.size(); ++i) {
    EXPECT_EQ(event.packets[i].delivered, sweep.packets[i].delivered)
        << "packet " << i;
    EXPECT_EQ(event.packets[i].inject_cycle, sweep.packets[i].inject_cycle)
        << "packet " << i;
    if (event.packets[i].delivered && sweep.packets[i].delivered) {
      EXPECT_EQ(event.packets[i].finish_cycle, sweep.packets[i].finish_cycle)
          << "packet " << i;
    }
  }
}

/// Seeded random batch routed by `router`; inject cycles spread over
/// [0, spread], mixed lengths, vcs assigned by make_packet.
std::vector<PacketSpec> random_batch(const Mesh2D& m,
                                     const routing::Router& router,
                                     const grid::CellSet& blocked,
                                     std::size_t packets, std::uint8_t vcs,
                                     std::int64_t spread, stats::Rng& rng) {
  std::vector<PacketSpec> specs;
  std::size_t attempts = 0;
  while (specs.size() < packets && ++attempts < packets * 50) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
    if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
      continue;
    }
    const auto route = router.route(src, dst);
    if (!route.delivered()) continue;
    const auto flits =
        static_cast<std::int32_t>(rng.uniform_int(1, 12));
    specs.push_back(
        make_packet(route, vcs, flits, rng.uniform_int(0, spread)));
  }
  return specs;
}

TEST(KernelEquivalenceTest, RandomXyBatchesOnMesh) {
  const Mesh2D m(12, 12);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    stats::Rng rng(seed);
    const auto specs = random_batch(m, router, blocked, 120, 1, 96, rng);
    ASSERT_FALSE(specs.empty());
    expect_identical(m, {.num_vcs = 1, .vc_buffer_flits = 2}, specs,
                     "xy mesh seed " + std::to_string(seed));
  }
}

TEST(KernelEquivalenceTest, RandomXyBatchesOnTorus) {
  const Mesh2D m(10, 10, Topology::Torus);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    stats::Rng rng(seed);
    const auto specs = random_batch(m, router, blocked, 100, 2, 64, rng);
    ASSERT_FALSE(specs.empty());
    expect_identical(m, {.num_vcs = 2, .vc_buffer_flits = 1}, specs,
                     "xy torus seed " + std::to_string(seed));
  }
}

TEST(KernelEquivalenceTest, RingDetourBatchesOverLabeledFaults) {
  const Mesh2D m(14, 14);
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    stats::Rng rng(seed);
    const auto faults = fault::uniform_random(m, 14, rng);
    const auto labeled = labeling::run_pipeline(
        faults, {.engine = labeling::Engine::Reference});
    const auto blocked = labeling::disabled_cells(labeled.activation);
    const routing::FaultRingRouter router(m, blocked);
    std::vector<PacketSpec> specs;
    std::size_t attempts = 0;
    while (specs.size() < 80 && ++attempts < 4000) {
      const auto src = m.coord(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
      const auto dst = m.coord(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
      if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
        continue;
      }
      const auto route = router.route(src, dst);
      if (!route.delivered()) continue;
      try {
        PacketSpec spec = make_packet(route, 2, 6, rng.uniform_int(0, 48));
        WormholeSim probe(m, {.num_vcs = 2});
        probe.submit(spec);  // validates (drops channel-revisiting routes)
        specs.push_back(std::move(spec));
      } catch (const std::invalid_argument&) {
        continue;
      }
    }
    ASSERT_FALSE(specs.empty());
    expect_identical(m, {.num_vcs = 2, .vc_buffer_flits = 2}, specs,
                     "ring mesh seed " + std::to_string(seed));
  }
}

/// The canonical turn-cycle deadlock must produce identical verdicts,
/// cycle counts and stuck sets under both kernels.
std::vector<PacketSpec> turn_cycle(std::int32_t flits) {
  const Coord corners[] = {{2, 2}, {6, 2}, {6, 6}, {2, 6}};
  const auto leg = [](Coord from, Coord to) {
    std::vector<Coord> cells{from};
    Coord cur = from;
    while (cur != to) {
      if (cur.x != to.x) cur.x += to.x > cur.x ? 1 : -1;
      else cur.y += to.y > cur.y ? 1 : -1;
      cells.push_back(cur);
    }
    return cells;
  };
  std::vector<PacketSpec> specs;
  for (int w = 0; w < 4; ++w) {
    auto path = leg(corners[w], corners[(w + 1) % 4]);
    const auto second = leg(corners[(w + 1) % 4], corners[(w + 2) % 4]);
    path.insert(path.end(), second.begin() + 1, second.end());
    PacketSpec spec;
    spec.path = std::move(path);
    spec.vcs.assign(spec.path.size() - 1, 0);
    spec.length_flits = flits;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(KernelEquivalenceTest, TurnCycleDeadlockVerdictsMatch) {
  const Mesh2D m(10, 10);
  expect_identical(
      m, {.num_vcs = 1, .vc_buffer_flits = 1, .deadlock_threshold = 64},
      turn_cycle(32), "turn cycle, 1 vc");
  // Staggered injections: the deadlock forms while later worms are still
  // waiting on their inject cycles (exercises the frozen idle counter).
  auto staggered = turn_cycle(32);
  for (std::size_t i = 0; i < staggered.size(); ++i) {
    staggered[i].inject_cycle = static_cast<std::int64_t>(7 * i);
  }
  expect_identical(
      m, {.num_vcs = 1, .vc_buffer_flits = 1, .deadlock_threshold = 96},
      staggered, "turn cycle, staggered injections");
}

TEST(KernelEquivalenceTest, TorusWrapRingDeadlockOnOneClass) {
  // Four worms chasing each other east around a 4-wide torus row, all on
  // virtual channel 0: every worm acquires its first hop channel and blocks
  // on the next worm's — a wrap-around channel dependency cycle no planar
  // turn model can produce. Both kernels must report the same deadlock.
  const Mesh2D m(4, 4, Topology::Torus);
  std::vector<PacketSpec> specs;
  for (std::int32_t x = 0; x < 4; ++x) {
    PacketSpec spec;
    spec.path = {{x, 1}, {(x + 1) % 4, 1}, {(x + 2) % 4, 1}};
    spec.vcs = {0, 0};
    spec.length_flits = 8;
    specs.push_back(std::move(spec));
  }
  const SimConfig config{.num_vcs = 1, .vc_buffer_flits = 1,
                         .deadlock_threshold = 64};
  const SimResult result = run_with(m, config, SimKernel::Event, specs);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.stuck, 4u);
  expect_identical(m, config, specs, "torus wrap ring, one vc");
}

TEST(KernelEquivalenceTest, ClassBasedAssignmentBreaksTheWrapRing) {
  // The same wrap ring routed through make_packet_class_based: the class is
  // the *planar* address comparison, so the two worms whose shorter way
  // crosses the wrap seam (dst.x < src.x) land on the EW channel even
  // though they travel east — a dateline that cuts the cycle. Both kernels
  // must agree the load drains.
  const Mesh2D m(4, 4, Topology::Torus);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  std::vector<PacketSpec> specs;
  for (std::int32_t x = 0; x < 4; ++x) {
    const routing::Route route =
        router.route({x, 1}, {(x + 2) % 4, 1});
    ASSERT_TRUE(route.delivered());
    specs.push_back(make_packet_class_based(route, 8, 0));
  }
  // Wrap-crossing worms (src x=2,3 -> dst 0,1) ride VC 1, the rest VC 0.
  EXPECT_EQ(specs[0].vcs.front(), 0);
  EXPECT_EQ(specs[1].vcs.front(), 0);
  EXPECT_EQ(specs[2].vcs.front(), 1);
  EXPECT_EQ(specs[3].vcs.front(), 1);
  const SimConfig config{.num_vcs = 4, .vc_buffer_flits = 1,
                         .deadlock_threshold = 64};
  const SimResult result = run_with(m, config, SimKernel::Event, specs);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 4u);
  expect_identical(m, config, specs, "torus wrap ring, class vcs");
}

TEST(KernelEquivalenceTest, SparseInjectionGapsClockJumpExactly) {
  // Worms separated by quiescent gaps far longer than the deadlock
  // threshold: the event kernel jumps the clock across each gap, and the
  // frozen idle accounting must still match the sweep cycle for cycle.
  const Mesh2D m(12, 4);
  std::vector<PacketSpec> specs;
  for (int w = 0; w < 5; ++w) {
    PacketSpec spec;
    for (std::int32_t x = 0; x <= 10; ++x) spec.path.push_back({x, 1});
    spec.vcs.assign(spec.path.size() - 1, 0);
    spec.length_flits = 4;
    spec.inject_cycle = 5000 * w;
    specs.push_back(std::move(spec));
  }
  expect_identical(m,
                   {.num_vcs = 1, .vc_buffer_flits = 2,
                    .deadlock_threshold = 128},
                   specs, "sparse injections");
}

TEST(KernelEquivalenceTest, CycleCapCutsBothKernelsIdentically) {
  // A deadlocked turn cycle with max_cycles below the deadlock trigger:
  // both kernels must stop undecided at exactly max_cycles.
  const Mesh2D m(10, 10);
  expect_identical(m,
                   {.num_vcs = 1, .vc_buffer_flits = 1, .max_cycles = 40,
                    .deadlock_threshold = 1 << 20},
                   turn_cycle(32), "cycle cap before deadlock verdict");
  // And an injection scheduled beyond the cap never runs.
  auto late = turn_cycle(8);
  late[3].inject_cycle = 1000;
  expect_identical(m,
                   {.num_vcs = 1, .vc_buffer_flits = 4, .max_cycles = 500,
                    .deadlock_threshold = 64},
                   late, "injection beyond the cap");
}

TEST(KernelEquivalenceTest, ZeroHopAndMixedBatches) {
  const Mesh2D m(8, 8);
  std::vector<PacketSpec> specs;
  PacketSpec local;
  local.path = {{3, 3}};
  local.length_flits = 5;
  specs.push_back(local);
  PacketSpec hop;
  hop.path = {{3, 3}, {4, 3}};
  hop.vcs = {0};
  hop.length_flits = 2;
  hop.inject_cycle = 3;
  specs.push_back(hop);
  expect_identical(m, {.num_vcs = 1, .vc_buffer_flits = 1}, specs,
                   "zero-hop + one-hop");
}

}  // namespace
}  // namespace ocp::netsim
