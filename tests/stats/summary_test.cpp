#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace ocp::stats {
namespace {

TEST(SummaryTest, EmptySummaryIsSafe) {
  const Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Rng rng(5);
  Summary whole;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100 - 50;
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  Summary merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  Summary copy = s;
  copy.merge(Summary{});
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 2.0);

  Summary empty;
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SummaryTest, Ci95ShrinksWithSamples) {
  Rng rng(6);
  Summary small;
  Summary large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(SummaryTest, WelfordIsStableForLargeOffsets) {
  Summary s;
  // Values with a huge common offset; naive sum-of-squares would lose all
  // precision.
  for (double v : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) s.add(v);
  EXPECT_NEAR(s.mean(), 1e9 + 10, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

}  // namespace
}  // namespace ocp::stats
