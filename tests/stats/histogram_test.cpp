#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace ocp::stats {
namespace {

TEST(HistogramTest, RejectsBadLayout) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.7);
  h.add(5.5);
  h.add(9.9);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(3), 0u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
}

TEST(HistogramTest, TracksOverflowAndUnderflowExplicitly) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  h.add(5.0);     // in range
  h.add(10.0);    // hi is exclusive: counts as overflow
  h.add(1e9);     // overflow
  h.add(-0.001);  // underflow
  h.add(0.0);     // lo is inclusive: in range
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  // Clamped binning is unchanged: out-of-range samples still land in the
  // edge buckets and keep contributing to percentiles.
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(4), 2u);
}

TEST(HistogramTest, MergeAddsOverflowCounts) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(50.0);
  b.add(50.0);
  b.add(-1.0);
  a.merge(b);
  EXPECT_EQ(a.overflow(), 2u);
  EXPECT_EQ(a.underflow(), 1u);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  const Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, PercentilesOfUniformSamples) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.median(), 0.5, 0.02);
  EXPECT_NEAR(h.percentile(0.1), 0.1, 0.02);
  EXPECT_NEAR(h.percentile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.p99(), 0.99, 0.02);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h(0.0, 100.0, 20);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform() * 100);
  double prev = -1;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(1.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bin(1), 2u);
  EXPECT_EQ(a.bin(9), 1u);
}

TEST(HistogramTest, MergeRejectsIncompatible) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  Histogram c(0.0, 20.0, 10);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(HistogramTest, MergeRejectsDifferingLowerBound) {
  // Same width and bin count but shifted ranges — the buckets do not line
  // up, so merge must refuse rather than silently misfile counts.
  Histogram a(0.0, 10.0, 10);
  Histogram b(1.0, 11.0, 10);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  // The failed merge must not have touched the target.
  EXPECT_EQ(a.count(), 0u);
}

TEST(HistogramTest, MergeCarriesUnderflowCounts) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  b.add(-5.0);
  b.add(-1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.underflow(), 2u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, AllOverflowPercentileIsCappedAtHi) {
  // Every sample lands at or above hi: percentiles degrade to the clamped
  // last bucket (a lower bound, per the class contract), and overflow()
  // equals the sample count so callers can detect the distortion.
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);
  h.add(100.0);
  h.add(1e12);
  EXPECT_EQ(h.overflow(), h.count());
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, h.bin_lo(9));
    EXPECT_LE(v, 10.0);
  }
}

TEST(HistogramTest, AllUnderflowPercentileStaysInFirstBucket) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(-1e9);
  EXPECT_EQ(h.underflow(), h.count());
  EXPECT_GE(h.percentile(0.99), 0.0);
  EXPECT_LE(h.percentile(0.99), h.bin_lo(1));
}

TEST(HistogramTest, MergingAllOverflowInputsKeepsTheCap) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(50.0);
  b.add(60.0);
  b.add(70.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.overflow(), 3u);
  EXPECT_LE(a.percentile(0.99), 10.0);
}

TEST(HistogramTest, SparklineShape) {
  Histogram h(0.0, 4.0, 4);
  const std::string flat = h.sparkline();
  EXPECT_FALSE(flat.empty());
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const std::string spark = h.sparkline();
  // Highest bucket renders the full block.
  EXPECT_NE(spark.find("█"), std::string::npos);
}

TEST(HistogramTest, BinLoEdges) {
  const Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
}

}  // namespace
}  // namespace ocp::stats
