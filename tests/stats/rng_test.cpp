#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ocp::stats {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 32 && !any_different; ++i) {
    any_different = a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30);
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(21);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
  EXPECT_TRUE(rng.sample_without_replacement(0, 0).empty());
}

TEST(RngTest, SampleCoversWholeRangeEventually) {
  Rng rng(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    for (std::size_t v : rng.sample_without_replacement(10, 3)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ForkSeedProducesFreshStreams) {
  Rng parent(31);
  const auto s1 = parent.fork_seed();
  const auto s2 = parent.fork_seed();
  EXPECT_NE(s1, s2);
  Rng c1(s1);
  Rng c2(s2);
  EXPECT_NE(c1.uniform_int(0, 1 << 30), c2.uniform_int(0, 1 << 30));
}

TEST(RngTest, SeedAccessorReturnsConstructorSeed) {
  EXPECT_EQ(Rng(77).seed(), 77u);
}

}  // namespace
}  // namespace ocp::stats
