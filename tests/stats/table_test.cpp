#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace ocp::stats {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a     long-header"), std::string::npos);
  EXPECT_NE(out.find("yyyy  2"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  t.add_row({"with\"quote", "3"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name,value\n"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\",2"), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\",3"), std::string::npos);
}

TEST(TableTest, RowCountAndAccessors) {
  Table t({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.header().size(), 1u);
  EXPECT_EQ(t.rows()[0][0], "r");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(TableTest, FormatMeanCi) {
  EXPECT_EQ(format_mean_ci(12.345, 0.678, 2), "12.35 ± 0.68");
}

TEST(TableTest, WriteCsvCreatesFile) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = testing::TempDir() + "/ocp_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
}

}  // namespace
}  // namespace ocp::stats
