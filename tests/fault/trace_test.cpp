#include "fault/trace.hpp"

#include <gtest/gtest.h>

#include "fault/generators.hpp"

namespace ocp::fault {
namespace {

using mesh::Mesh2D;
using mesh::Topology;

TEST(TraceTest, RoundTripMesh) {
  const Mesh2D m(12, 9);
  stats::Rng rng(3);
  const auto faults = uniform_random(m, 15, rng);
  const auto parsed = from_trace_string(to_trace_string(faults));
  EXPECT_EQ(parsed, faults);
  EXPECT_EQ(parsed.topology(), m);
}

TEST(TraceTest, RoundTripTorus) {
  const Mesh2D m(7, 7, Topology::Torus);
  const grid::CellSet faults{m, {{0, 0}, {6, 6}}};
  const auto parsed = from_trace_string(to_trace_string(faults));
  EXPECT_EQ(parsed, faults);
  EXPECT_TRUE(parsed.topology().is_torus());
}

TEST(TraceTest, EmptyFaultSetRoundTrips) {
  const Mesh2D m(5, 5);
  const grid::CellSet faults(m);
  EXPECT_EQ(from_trace_string(to_trace_string(faults)), faults);
}

TEST(TraceTest, CommentsAndBlankLinesAreIgnored) {
  const std::string text =
      "# a comment\n"
      "ocpmesh-trace v1\n"
      "\n"
      "machine 6 4 mesh   # inline comment\n"
      "  fault 2 3\n"
      "\n";
  const auto faults = from_trace_string(text);
  EXPECT_EQ(faults.size(), 1u);
  EXPECT_TRUE(faults.contains({2, 3}));
  EXPECT_EQ(faults.topology().width(), 6);
  EXPECT_EQ(faults.topology().height(), 4);
}

TEST(TraceTest, RejectsMissingHeader) {
  EXPECT_THROW(from_trace_string("machine 4 4 mesh\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string(""), std::invalid_argument);
}

TEST(TraceTest, RejectsMissingMachine) {
  EXPECT_THROW(from_trace_string("ocpmesh-trace v1\nfault 1 1\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string("ocpmesh-trace v1\n"),
               std::invalid_argument);
}

TEST(TraceTest, RejectsMalformedLines) {
  const std::string prefix = "ocpmesh-trace v1\nmachine 4 4 mesh\n";
  EXPECT_THROW(from_trace_string(prefix + "fault 1\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string(prefix + "wibble 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string("ocpmesh-trace v1\nmachine 0 4 mesh\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string("ocpmesh-trace v1\nmachine 4 4 ring\n"),
               std::invalid_argument);
}

TEST(TraceTest, RejectsOutOfMachineAndDuplicateFaults) {
  const std::string prefix = "ocpmesh-trace v1\nmachine 4 4 mesh\n";
  EXPECT_THROW(from_trace_string(prefix + "fault 4 0\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string(prefix + "fault -1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(from_trace_string(prefix + "fault 1 1\nfault 1 1\n"),
               std::invalid_argument);
}

TEST(TraceTest, RejectsDuplicateMachine) {
  EXPECT_THROW(from_trace_string(
                   "ocpmesh-trace v1\nmachine 4 4 mesh\nmachine 5 5 mesh\n"),
               std::invalid_argument);
}

TEST(TraceTest, FileRoundTrip) {
  const Mesh2D m(8, 8);
  stats::Rng rng(5);
  const auto faults = uniform_random(m, 9, rng);
  const std::string path = testing::TempDir() + "/ocp_trace_test.txt";
  save_trace(path, faults);
  EXPECT_EQ(load_trace(path), faults);
}

TEST(TraceTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace ocp::fault
