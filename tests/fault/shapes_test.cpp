#include "fault/shapes.hpp"

#include <gtest/gtest.h>

#include "geometry/convexity.hpp"

namespace ocp::fault {
namespace {

using geom::Region;
using mesh::Coord;
using mesh::Mesh2D;

TEST(ShapesTest, RectangleCellsAndAnchor) {
  const Region r = make_rectangle({2, 3}, 4, 2);
  EXPECT_EQ(r.size(), 8u);
  EXPECT_TRUE(r.contains({2, 3}));
  EXPECT_TRUE(r.contains({5, 4}));
  EXPECT_FALSE(r.contains({6, 3}));
  EXPECT_TRUE(r.is_rectangle());
}

TEST(ShapesTest, LShapeGeometry) {
  const Region l = make_l_shape({0, 0}, 5, 2);
  // Vertical arm 2x5 plus horizontal arm 3x2.
  EXPECT_EQ(l.size(), 10u + 6u);
  EXPECT_TRUE(l.contains({0, 4}));
  EXPECT_TRUE(l.contains({4, 0}));
  EXPECT_FALSE(l.contains({4, 4}));
  EXPECT_TRUE(geom::is_orthogonal_convex_polygon(l));
}

TEST(ShapesTest, TShapeGeometry) {
  const Region t = make_t_shape({0, 0}, 5, 2);
  EXPECT_EQ(t.size(), 5u + 2u);
  EXPECT_TRUE(t.contains({0, 2}));  // bar
  EXPECT_TRUE(t.contains({2, 0}));  // stem
  EXPECT_FALSE(t.contains({0, 0}));
  EXPECT_TRUE(geom::is_orthogonal_convex_polygon(t));
}

TEST(ShapesTest, PlusShapeGeometry) {
  const Region p = make_plus_shape({5, 5}, 2);
  EXPECT_EQ(p.size(), 2u * (2u * 2u + 1u) - 1u);
  EXPECT_TRUE(p.contains({5, 5}));
  EXPECT_TRUE(p.contains({3, 5}));
  EXPECT_TRUE(p.contains({5, 7}));
  EXPECT_FALSE(p.contains({4, 4}));
  EXPECT_TRUE(geom::is_orthogonal_convex_polygon(p));
}

TEST(ShapesTest, UShapeIsConcave) {
  const Region u = make_u_shape({0, 0}, 5, 3);
  EXPECT_EQ(u.size(), 5u + 2u * 2u);
  EXPECT_FALSE(geom::is_orthogonal_convex(u));
  EXPECT_TRUE(u.is_connected());
}

TEST(ShapesTest, HShapeIsConcave) {
  const Region h = make_h_shape({0, 0}, 5, 5);
  EXPECT_EQ(h.size(), 5u + 5u + 3u);
  EXPECT_FALSE(geom::is_orthogonal_convex(h));
  EXPECT_TRUE(h.is_connected());
}

TEST(ShapesTest, ToFaultSetSingleRegion) {
  const Mesh2D m(10, 10);
  const Region l = make_l_shape({1, 1}, 4, 1);
  const grid::CellSet faults = to_fault_set(m, l);
  EXPECT_EQ(faults.size(), l.size());
  for (Coord c : l.cells()) EXPECT_TRUE(faults.contains(c));
}

TEST(ShapesTest, ToFaultSetUnionOfRegions) {
  const Mesh2D m(20, 20);
  const std::vector<Region> regions = {make_rectangle({1, 1}, 2, 2),
                                       make_rectangle({10, 10}, 3, 1)};
  const grid::CellSet faults = to_fault_set(m, regions);
  EXPECT_EQ(faults.size(), 4u + 3u);
}

}  // namespace
}  // namespace ocp::fault
