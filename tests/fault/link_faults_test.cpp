#include "fault/link_faults.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/pipeline.hpp"
#include "routing/router.hpp"

namespace ocp::fault {
namespace {

using mesh::Coord;
using mesh::Mesh2D;

TEST(LinkSetTest, CanonicalizesEndpoints) {
  const Link l1 = make_link({3, 3}, {2, 3});
  EXPECT_EQ(l1.a, (Coord{2, 3}));
  EXPECT_EQ(l1.b, (Coord{3, 3}));
  EXPECT_EQ(make_link({2, 3}, {3, 3}), l1);
}

TEST(LinkSetTest, InsertAndContainsEitherOrder) {
  LinkSet links{Mesh2D(6, 6)};
  links.insert({2, 2}, {2, 3});
  EXPECT_TRUE(links.contains({2, 2}, {2, 3}));
  EXPECT_TRUE(links.contains({2, 3}, {2, 2}));
  EXPECT_FALSE(links.contains({2, 2}, {3, 2}));
  EXPECT_EQ(links.size(), 1u);
  links.insert({2, 3}, {2, 2});  // duplicate, either order
  EXPECT_EQ(links.size(), 1u);
}

TEST(LinkSetTest, RejectsNonLinks) {
  LinkSet links{Mesh2D(6, 6)};
  EXPECT_THROW(links.insert({0, 0}, {2, 0}), std::invalid_argument);
  EXPECT_THROW(links.insert({0, 0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(links.insert({0, 0}, {-1, 0}), std::invalid_argument);
}

TEST(LinkSetTest, TorusWrapLinksAreValid) {
  LinkSet links{Mesh2D(6, 6, mesh::Topology::Torus)};
  links.insert({0, 2}, {5, 2});
  EXPECT_TRUE(links.contains({5, 2}, {0, 2}));
}

TEST(ReductionTest, EveryFailedLinkGetsAFaultyEndpoint) {
  const Mesh2D m(10, 10);
  stats::Rng rng(1);
  const LinkSet links = random_link_faults(m, 15, rng);
  const grid::CellSet base(m);
  for (auto policy :
       {LinkReduction::FirstEndpoint, LinkReduction::MostIncident}) {
    const auto nodes = reduce_to_node_faults(links, base, policy);
    for (const Link& l : links.links()) {
      EXPECT_TRUE(nodes.contains(l.a) || nodes.contains(l.b));
    }
  }
}

TEST(ReductionTest, ExistingNodeFaultsCoverTheirLinks) {
  const Mesh2D m(8, 8);
  LinkSet links(m);
  links.insert({3, 3}, {4, 3});
  const grid::CellSet base{m, {{3, 3}}};
  const auto nodes = reduce_to_node_faults(links, base);
  // The already-faulty endpoint suffices; nothing new is sacrificed.
  EXPECT_EQ(nodes.size(), 1u);
}

TEST(ReductionTest, MostIncidentSacrificesFewerNodesOnStars) {
  // Four failed links around one hub: greedy covers all with the hub node;
  // the first-endpoint policy may sacrifice several.
  const Mesh2D m(8, 8);
  LinkSet links(m);
  const Coord hub{4, 4};
  for (mesh::Dir d : mesh::kAllDirs) {
    links.insert(hub, hub.step(d));
  }
  const grid::CellSet base(m);
  const auto greedy =
      reduce_to_node_faults(links, base, LinkReduction::MostIncident);
  const auto naive =
      reduce_to_node_faults(links, base, LinkReduction::FirstEndpoint);
  EXPECT_EQ(greedy.size(), 1u);
  EXPECT_TRUE(greedy.contains(hub));
  EXPECT_GT(naive.size(), 1u);
}

TEST(ReductionTest, PipelineOverReducedFaultsKeepsInvariants) {
  const Mesh2D m(16, 16);
  stats::Rng rng(5);
  const LinkSet links = random_link_faults(m, 12, rng);
  const auto node_view = reduce_to_node_faults(links, grid::CellSet(m));
  const auto result = labeling::run_pipeline(node_view);
  for (const auto& block : result.blocks) {
    EXPECT_TRUE(block.region().is_rectangle());
  }
}

TEST(ReductionTest, RoutesNeverUseFailedLinks) {
  // Soundness of the reduction end to end: a route over the reduced node
  // faults cannot traverse any failed link (one endpoint is always
  // blocked).
  const Mesh2D m(14, 14);
  stats::Rng rng(7);
  const LinkSet links = random_link_faults(m, 10, rng);
  const auto node_view = reduce_to_node_faults(links, grid::CellSet(m));
  const auto result = labeling::run_pipeline(node_view);
  const auto blocked = labeling::disabled_cells(result.activation);
  const routing::FaultRingRouter router(m, blocked);

  stats::Rng pair_rng(8);
  for (int i = 0; i < 100; ++i) {
    const auto src = m.coord(static_cast<std::size_t>(
        pair_rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        pair_rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
      continue;
    }
    const auto route = router.route(src, dst);
    if (!route.delivered()) continue;
    for (std::size_t h = 0; h + 1 < route.path.size(); ++h) {
      ASSERT_FALSE(links.contains(route.path[h], route.path[h + 1]))
          << "route used failed link at hop " << h;
    }
  }
}

TEST(ReductionTest, TorusWrapLinksGetAFaultyEndpoint) {
  const Mesh2D m(6, 6, mesh::Topology::Torus);
  LinkSet links(m);
  links.insert({0, 2}, {5, 2});  // horizontal wrap
  links.insert({3, 0}, {3, 5});  // vertical wrap
  links.insert({1, 1}, {2, 1});  // ordinary interior link
  for (auto policy :
       {LinkReduction::FirstEndpoint, LinkReduction::MostIncident}) {
    const auto nodes = reduce_to_node_faults(links, grid::CellSet(m), policy);
    for (const Link& l : links.links()) {
      EXPECT_TRUE(nodes.contains(l.a) || nodes.contains(l.b));
    }
  }
}

TEST(ReductionTest, TorusWrapStarIsCoveredByItsHub) {
  // The seam node (0, 0) of a torus has wrap links west and south; greedy
  // reduction must treat them as incident to the hub like any other link.
  const Mesh2D m(5, 5, mesh::Topology::Torus);
  LinkSet links(m);
  const Coord hub{0, 0};
  for (mesh::Dir d : mesh::kAllDirs) {
    links.insert(hub, *m.neighbor(hub, d));  // torus: always present
  }
  const auto nodes =
      reduce_to_node_faults(links, grid::CellSet(m),
                            LinkReduction::MostIncident);
  EXPECT_EQ(nodes.size(), 1u);
  EXPECT_TRUE(nodes.contains(hub));
}

TEST(ReductionTest, DegenerateSingleRowReduction) {
  const Mesh2D m(8, 1);
  LinkSet links(m);
  links.insert({3, 0}, {4, 0});
  const auto nodes = reduce_to_node_faults(links, grid::CellSet(m));
  EXPECT_EQ(nodes.size(), 1u);
  EXPECT_TRUE(nodes.contains({3, 0}) || nodes.contains({4, 0}));
}

TEST(LinkSetTest, DegenerateSingleColumnMeshHasOnlyVerticalLinks) {
  const Mesh2D m(1, 8);
  LinkSet links(m);
  links.insert({0, 3}, {0, 4});
  EXPECT_TRUE(links.contains({0, 4}, {0, 3}));
  // No horizontal neighbors exist on a 1-wide mesh.
  EXPECT_THROW(links.insert({0, 0}, {1, 0}), std::invalid_argument);
}

TEST(RandomLinkFaultsTest, CountAndValidity) {
  const Mesh2D m(10, 10);
  stats::Rng rng(9);
  const LinkSet links = random_link_faults(m, 25, rng);
  EXPECT_EQ(links.size(), 25u);
  for (const Link& l : links.links()) {
    EXPECT_TRUE(m.linked(l.a, l.b));
  }
}

TEST(RandomLinkFaultsTest, RequestBeyondAllLinksIsClamped) {
  const Mesh2D m(3, 3);
  stats::Rng rng(10);
  // A 3x3 mesh has 2*3 + 3*2 = 12 links.
  const LinkSet links = random_link_faults(m, 1000, rng);
  EXPECT_EQ(links.size(), 12u);
}

TEST(RandomLinkFaultsTest, TorusClampCountsWrapLinks) {
  // A 4x4 torus has 2 links per node (each undirected link shared by two
  // nodes, 4 incident each): 2 * 16 = 32, including the wrap seams.
  const Mesh2D m(4, 4, mesh::Topology::Torus);
  stats::Rng rng(11);
  const LinkSet links = random_link_faults(m, 1000, rng);
  EXPECT_EQ(links.size(), 32u);
  bool saw_wrap = false;
  for (const Link& l : links.links()) {
    if (std::abs(l.a.x - l.b.x) > 1 || std::abs(l.a.y - l.b.y) > 1) {
      saw_wrap = true;
    }
  }
  EXPECT_TRUE(saw_wrap);
}

TEST(RandomLinkFaultsTest, DegenerateSingleColumnClampsToLineLinks) {
  const Mesh2D m(1, 8);
  stats::Rng rng(12);
  // A 1x8 line has exactly 7 links.
  const LinkSet links = random_link_faults(m, 100, rng);
  EXPECT_EQ(links.size(), 7u);
  for (const Link& l : links.links()) {
    EXPECT_EQ(l.a.x, 0);
    EXPECT_EQ(l.b.x, 0);
  }
}

}  // namespace
}  // namespace ocp::fault
