#include "fault/fixtures.hpp"

#include <gtest/gtest.h>

namespace ocp::fault {
namespace {

TEST(FixturesTest, WorkedExampleFaults) {
  const Fixture fx = worked_example();
  EXPECT_EQ(fx.faults.size(), 3u);
  EXPECT_TRUE(fx.faults.contains({1, 3}));
  EXPECT_TRUE(fx.faults.contains({2, 1}));
  EXPECT_TRUE(fx.faults.contains({3, 2}));
  EXPECT_FALSE(fx.name.empty());
  EXPECT_FALSE(fx.description.empty());
}

TEST(FixturesTest, Figure1TwoClusters) {
  const Fixture fx = figure1();
  EXPECT_EQ(fx.faults.size(), 4u);
  EXPECT_TRUE(fx.faults.contains({2, 2}));
  EXPECT_TRUE(fx.faults.contains({3, 4}));
}

TEST(FixturesTest, Figure2aPocketIsHealthy) {
  const Fixture fx = figure2a();
  EXPECT_EQ(fx.faults.size(), 16u - 4u);
  // Pocket cells are healthy.
  EXPECT_FALSE(fx.faults.contains({4, 4}));
  EXPECT_FALSE(fx.faults.contains({5, 5}));
  // Block cells outside the pocket are faulty.
  EXPECT_TRUE(fx.faults.contains({2, 2}));
  EXPECT_TRUE(fx.faults.contains({3, 5}));
}

TEST(FixturesTest, Figure2bPocketIsHealthy) {
  const Fixture fx = figure2b();
  EXPECT_EQ(fx.faults.size(), 20u - 2u);
  EXPECT_FALSE(fx.faults.contains({4, 4}));
  EXPECT_FALSE(fx.faults.contains({4, 5}));
  EXPECT_TRUE(fx.faults.contains({3, 5}));
  EXPECT_TRUE(fx.faults.contains({5, 5}));
}

TEST(FixturesTest, AllFaultsInsideTheirMachines) {
  for (const Fixture& fx :
       {worked_example(), figure1(), figure2a(), figure2b()}) {
    fx.faults.for_each([&](mesh::Coord c) {
      EXPECT_TRUE(fx.faults.topology().contains(c)) << fx.name;
    });
  }
}

}  // namespace
}  // namespace ocp::fault
