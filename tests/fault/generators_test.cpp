#include "fault/generators.hpp"

#include <gtest/gtest.h>

namespace ocp::fault {
namespace {

using mesh::Mesh2D;

TEST(UniformRandomTest, ExactCount) {
  const Mesh2D m(20, 20);
  stats::Rng rng(1);
  for (std::size_t f : {0u, 1u, 17u, 100u, 400u}) {
    EXPECT_EQ(uniform_random(m, f, rng).size(), f);
  }
}

TEST(UniformRandomTest, CellsAreDistinctByConstruction) {
  const Mesh2D m(10, 10);
  stats::Rng rng(2);
  const auto faults = uniform_random(m, 50, rng);
  EXPECT_EQ(faults.size(), 50u);  // CellSet dedupes; equality means distinct
}

TEST(UniformRandomTest, DeterministicForSeed) {
  const Mesh2D m(30, 30);
  stats::Rng a(99);
  stats::Rng b(99);
  EXPECT_EQ(uniform_random(m, 40, a), uniform_random(m, 40, b));
}

TEST(UniformRandomTest, CoversWholeMeshOverManyDraws) {
  const Mesh2D m(5, 5);
  stats::Rng rng(3);
  grid::CellSet seen(m);
  for (int i = 0; i < 200; ++i) {
    uniform_random(m, 3, rng).for_each([&](mesh::Coord c) { seen.insert(c); });
  }
  EXPECT_EQ(seen.size(), 25u);
}

TEST(BernoulliTest, ProbabilityZeroAndOne) {
  const Mesh2D m(10, 10);
  stats::Rng rng(4);
  EXPECT_TRUE(bernoulli(m, 0.0, rng).empty());
  EXPECT_EQ(bernoulli(m, 1.0, rng).size(), 100u);
}

TEST(BernoulliTest, RateIsRoughlyP) {
  const Mesh2D m(100, 100);
  stats::Rng rng(5);
  const auto faults = bernoulli(m, 0.1, rng);
  EXPECT_GT(faults.size(), 800u);
  EXPECT_LT(faults.size(), 1200u);
}

TEST(ClusteredTest, ProducesRequestedClusters) {
  const Mesh2D m(50, 50);
  stats::Rng rng(6);
  const auto faults = clustered(m, 3, 10, rng);
  EXPECT_GE(faults.size(), 3u);          // at least the centers
  EXPECT_LE(faults.size(), 30u);         // at most clusters * per_cluster
}

TEST(ClusteredTest, FaultsStayInsideMachine) {
  const Mesh2D m(12, 9);
  stats::Rng rng(7);
  const auto faults = clustered(m, 4, 8, rng);
  faults.for_each([&](mesh::Coord c) { EXPECT_TRUE(m.contains(c)); });
}

}  // namespace
}  // namespace ocp::fault
